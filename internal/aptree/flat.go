package aptree

import (
	"encoding/binary"

	"apclassifier/internal/bdd"
)

// Flat is the cache-packed array form of one epoch's AP Tree, compiled at
// publish time from the pointer tree (see flatbuild.go). It is the raw-speed
// stage-1 engine: the descent runs over a contiguous []flatNode laid out in
// descent order (a node's true-subtree follows it immediately), child
// selection is an index load rather than a pointer chase, and most node
// predicates are lowered out of the BDD entirely:
//
//   - minterm predicates (prefix matches: exactly one satisfying path) become
//     a masked byte-compare over a ≤8-byte window of the header;
//   - predicates probing at most flatMaxTableBits distinct header bits become
//     a truth-table bit test over those probed bits;
//   - union-of-rules predicates with at most flatMaxCubes satisfying BDD
//     paths (forwarding tables, ACL permit sets) become a cube list — an OR
//     of masked byte-compares, one per path;
//   - everything wider falls back to the frozen bdd.View the snapshot
//     already carries, so the flat form is never less general than the tree.
//
// A Flat is immutable after compileFlat returns and is owned by exactly one
// Snapshot; like everything else reachable from a snapshot it may be read
// from any number of goroutines without a lock. It answers identically to
// the pointer descent by construction, and the differential fuzz/property
// suite (flat_test.go, the root FuzzFlatVsPointer harness, churn coverage)
// holds it to bit-identical answers on every dataset.
type Flat struct {
	nodes  []flatNode
	leaves []*Node    // leaf payloads; kids encode leaf L as ^L
	bits   []uint16   // probed-bit-position arena (table nodes)
	table  []uint64   // truth-table word arena (table nodes)
	cubes  []flatCube // rule-cube arena (cube nodes)
	root   int32      // root node index, or ^leafIdx when the tree is one leaf
	view   *bdd.View

	// src identifies the pointer-tree root this form was compiled from; the
	// apdebug build asserts a snapshot never serves a flat form compiled for
	// another epoch's tree (see Snapshot.debugCheckFlat).
	src *Node

	maskNodes, tableNodes, cubeNodes, fallbackNodes int
}

// flatNode is one internal tree node, 40 bytes. kids[b] is the next node
// index when the node's test evaluates to b; a negative index ^L terminates
// the descent at leaf L. A flatMask node carries its want/mask words inline
// — the payload rides the same cache line as the node, so the dominant test
// kind touches no arena at all. off/aux are overloaded by kind: for
// flatMask, off is the first probed packet byte; for flatTable, off is the
// bit-position-arena offset and aux the table-arena word offset; for
// flatCubes, aux is the cube-arena offset and n the cube count.
type flatNode struct {
	kids       [2]int32
	want, mask uint64  // flatMask: little-endian match words, zero past the span
	pred       bdd.Ref // flatBDD: evaluated through the frozen view
	kind       uint8
	n          uint8 // flatMask: probed bytes (≤8); flatTable: probed bits
	off        uint32
	aux        uint32
}

// Node predicate evaluation kinds, cheapest-first.
const (
	flatBDD   uint8 = iota // frozen-view fallback for wide predicates
	flatMask               // minterm: masked byte compare
	flatTable              // truth table over the probed bits
	flatCubes              // union of rule cubes: OR of masked byte compares
)

// flatCube is one masked-compare term of a flatCubes node: the cube
// matches when the little-endian word at pkt[off:] ANDed with mask equals
// want. Cubes of one node come from disjoint BDD paths, so the node's
// predicate holds exactly when some cube matches.
type flatCube struct {
	want, mask uint64
	off        uint32 // first probed packet byte
	n          uint8  // probed bytes (≤8), for the short-packet path
	_          [3]byte
}

// flatMaxTableBits bounds the truth-table lowering: a predicate probing
// more distinct header bits than this falls back to the frozen view (the
// table would cost 2^bits). 12 keeps every table within 64 words.
const flatMaxTableBits = 12

// flatTableBudgetWords caps the per-lineage truth-table arena so a
// pathological predicate set cannot balloon the compiled form; plans past
// the budget fall back to the frozen view.
const flatTableBudgetWords = 1 << 16

// flatMaxCubes bounds the cube-list lowering: a predicate with more
// satisfying BDD paths than this falls back to the frozen view. Past a few
// dozen sequential compares the frozen view's single descent wins anyway.
const flatMaxCubes = 64

// test evaluates node n's predicate against pkt, returning 1 (true branch)
// or 0. Both the single-packet descent and the group-by-branch batch
// descent funnel through it. The flatMask word tiers live here so the
// whole function stays within the inliner's budget — everything with a
// loop or an out-of-line call sits behind testSlow.
//
// The mask compare exploits the node layout: want and mask are whole
// little-endian words, zero beyond the probed span, and packet bytes are
// matched positionally — so a little-endian word load of the packet window
// ANDed with the mask word equals the want word exactly when every probed
// byte matches. One unaligned load replaces a per-byte loop whenever the
// 8-byte window fits inside the packet; a ≤4-byte span falls back to a
// 4-byte load (the mask's high bytes are zero), and only packets too short
// for either walk the probed bytes one at a time (testSlow).
func (f *Flat) test(n *flatNode, pkt []byte) int32 {
	if n.kind == flatMask && int(n.off)+8 <= len(pkt) {
		if binary.LittleEndian.Uint64(pkt[n.off:])&n.mask == n.want {
			return 1
		}
		return 0
	}
	return f.testSlow(n, pkt)
}

// testSlow evaluates everything off the word fast path: truth-table
// probes, frozen-view descent, and mask nodes whose 8-byte window hangs
// off the packet's end (a 4-byte load when the span allows it, else the
// probed bytes one at a time).
func (f *Flat) testSlow(n *flatNode, pkt []byte) int32 {
	switch n.kind {
	case flatMask:
		o := int(n.off)
		if n.n <= 4 && o+4 <= len(pkt) {
			if uint64(binary.LittleEndian.Uint32(pkt[o:]))&n.mask == n.want {
				return 1
			}
			return 0
		}
		var acc byte
		for j := 0; j < int(n.n); j++ {
			acc |= (pkt[o+j] ^ byte(n.want>>(8*j))) & byte(n.mask>>(8*j))
		}
		if acc == 0 {
			return 1
		}
		return 0
	case flatCubes:
		for _, c := range f.cubes[n.aux : n.aux+uint32(n.n)] {
			o := int(c.off)
			if o+8 <= len(pkt) {
				if binary.LittleEndian.Uint64(pkt[o:])&c.mask == c.want {
					return 1
				}
				continue
			}
			if c.n <= 4 && o+4 <= len(pkt) {
				if uint64(binary.LittleEndian.Uint32(pkt[o:]))&c.mask == c.want {
					return 1
				}
				continue
			}
			var acc byte
			for j := 0; j < int(c.n); j++ {
				acc |= (pkt[o+j] ^ byte(c.want>>(8*j))) & byte(c.mask>>(8*j))
			}
			if acc == 0 {
				return 1
			}
		}
		return 0
	case flatTable:
		idx := uint32(0)
		for _, pos := range f.bits[n.off : n.off+uint32(n.n)] {
			idx = idx<<1 | uint32(pkt[pos>>3]>>(7-pos&7))&1
		}
		return int32(f.table[n.aux+idx>>6] >> (idx & 63) & 1)
	}
	if f.view.EvalBits(n.pred, pkt) {
		return 1
	}
	return 0
}

// Classify runs the flat stage-1 descent and returns the leaf whose atom
// contains the packet. It takes no lock, does not allocate, and does no
// visit accounting — Snapshot.Classify wraps it with the epoch's counters;
// calling it directly (differential tests, benchmarks) never disturbs the
// §V-D distribution statistics.
func (f *Flat) Classify(pkt []byte) *Node {
	i := f.root
	for i >= 0 {
		n := &f.nodes[i]
		i = n.kids[f.test(n, pkt)]
	}
	return f.leaves[^i]
}

// descend is the group-by-branch batch search over the flat layout,
// mirroring the pointer tree's descend: idx is partitioned in place by one
// test per packet while each flat node is touched once per group. visit is
// called once per leaf group with the group's total packet weight.
func (f *Flat) descend(i int32, pkts [][]byte, idx, tmp, weight []int32, out []*Node, visit func(atom int32, w uint64)) {
	for i >= 0 {
		n := &f.nodes[i]
		nt, nf := 0, 0
		if n.kind == flatMask { // hoisted word-compare fast path; see test
			want, msk := n.want, n.mask
			o, small := int(n.off), n.n <= 4
			for k := 0; k < len(idx); k++ {
				p := idx[k]
				pkt := pkts[p]
				var hit bool
				switch {
				case o+8 <= len(pkt):
					hit = binary.LittleEndian.Uint64(pkt[o:])&msk == want
				case small && o+4 <= len(pkt):
					hit = uint64(binary.LittleEndian.Uint32(pkt[o:]))&msk == want
				default:
					hit = f.test(n, pkt) != 0
				}
				if hit {
					idx[nt] = p // nt <= k: never overtakes the read cursor
					nt++
				} else {
					tmp[nf] = p
					nf++
				}
			}
		} else {
			for k := 0; k < len(idx); k++ {
				p := idx[k]
				if f.test(n, pkts[p]) != 0 {
					idx[nt] = p
					nt++
				} else {
					tmp[nf] = p
					nf++
				}
			}
		}
		copy(idx[nt:], tmp[:nf])
		switch {
		case nf == 0:
			i = n.kids[1]
		case nt == 0:
			i = n.kids[0]
		default:
			f.descend(n.kids[1], pkts, idx[:nt], tmp, weight, out, visit)
			f.descend(n.kids[0], pkts, idx[nt:], tmp, weight, out, visit)
			return
		}
	}
	leaf := f.leaves[^i]
	var w uint64
	for _, p := range idx {
		out[p] = leaf
		w += uint64(weight[p])
	}
	if visit != nil {
		visit(leaf.AtomID, w)
	}
}

// FlatStats describes a compiled flat form: node counts per evaluation
// kind and the total compiled footprint. The apc_flat_* gauges publish the
// latest build's values.
type FlatStats struct {
	Nodes         int // internal nodes in the flat array
	Leaves        int
	MaskNodes     int // minterm predicates lowered to masked byte compares
	TableNodes    int // predicates lowered to truth-table bit tests
	CubeNodes     int // union predicates lowered to rule-cube lists
	FallbackNodes int // wide predicates still evaluated through the frozen view
	Bytes         int // nodes + arenas + leaf index, excluding the shared view
}

// Stats reports the compiled form's size and lowering mix.
func (f *Flat) Stats() FlatStats {
	const nodeBytes = 40 // flatNode: kids + want/mask words + Ref + kind/n + off/aux
	const cubeBytes = 24
	return FlatStats{
		Nodes:         len(f.nodes),
		Leaves:        len(f.leaves),
		MaskNodes:     f.maskNodes,
		TableNodes:    f.tableNodes,
		CubeNodes:     f.cubeNodes,
		FallbackNodes: f.fallbackNodes,
		Bytes: len(f.nodes)*nodeBytes + len(f.leaves)*8 +
			len(f.bits)*2 + len(f.table)*8 + len(f.cubes)*cubeBytes,
	}
}
