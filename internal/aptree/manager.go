package aptree

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// Manager pairs a live AP Tree with its predicate registry and implements
// the paper's two-process operation (§VI): queries and real-time updates
// are served from the live tree, while Reconstruct — typically run on its
// own goroutine — rebuilds an optimized tree from a snapshot, replays the
// updates that arrived meanwhile, and atomically swaps it in.
//
// Queries never lock. Every mutation runs under the write lock, derives
// a new persistent tree version, and republishes an immutable Snapshot
// through one atomic pointer before releasing the lock; Classify is a
// single atomic load followed by the tree search against that epoch.
// Every rebuild happens in a fresh BDD manager, and a retired DD is
// abandoned whole rather than garbage collected, so snapshots pinned to
// old epochs keep evaluating correctly for as long as they are held.
type Manager struct {
	mu sync.RWMutex
	//lint:guard mu
	d   *bdd.DD
	reg *Registry
	//lint:guard mu
	tree *Tree
	// version increments at every swap; consumers caching per-tree data
	// (e.g. middlebox flow tables) invalidate on change.
	version uint64

	// snap is the published epoch read by the lock-free query path.
	// Writers store under mu; readers only Load.
	snap atomic.Pointer[Snapshot]

	method Method

	// flatOff disables compilation of the flat classify core at publish
	// time (APC_FLAT=0 escape hatch / A/B benchmarking); snapshots then
	// classify through the pointer tree.
	//lint:guard mu
	flatOff bool
	// flatPlans caches predicate lowering plans across the publishes of
	// one DD lineage; Reconstruct's DD swap discards it (refs from the
	// retired DD mean nothing in the new one).
	//lint:guard mu
	flatPlans *flatPlanner

	rebuildMu sync.Mutex
	journal   []journalOp // non-nil while a rebuild is in flight

	// updatesSinceSwap counts Add/Delete operations applied to the live
	// tree since the last reconstruction; the auto-reconstruction policy
	// triggers on it (§VI-B: "the number of updates on the current AP
	// Tree is higher than a threshold").
	updatesSinceSwap int

	// retiredVisits accumulates, at each reconstruction swap, the visit
	// total of the tree lineage being retired. Together with the live
	// lineage's counters it derives TotalClassifications without adding
	// any work to the lock-free Classify path. Queries still pinned to a
	// retired epoch keep incrementing the old lineage's counters; those
	// late increments are not folded in, so the derived total is a slight
	// undercount under heavy swap churn — an accepted trade for a
	// zero-cost query path.
	//lint:guard mu
	retiredVisits uint64

	// notify, once created by PublishNotify, receives a coalesced signal
	// (capacity-one, non-blocking send) after every snapshot publication.
	//lint:guard mu
	notify chan struct{}
}

type journalOp struct {
	del  bool
	hard bool // physical removal (atom merge), not a tombstone
	id   int32
	ref  bdd.Ref // in the DD that was live when the op was journaled
}

// NewManager returns a manager over an empty predicate set (every packet
// classifies to the single atom True).
func NewManager(numVars int, method Method) *Manager {
	d := bdd.New(numVars)
	tree := Build(Input{
		D:     d,
		Preds: nil,
		Live:  nil,
		Atoms: predicate.Compute(d, nil),
	}, MethodOrder)
	return NewManagerWith(d, NewRegistry(), tree, method)
}

// NewManagerWith wraps an already-built tree, its DD and its registry in a
// manager. It is the batch-construction path: converting a whole dataset
// and building the tree once is far cheaper than AddPredicate per
// predicate. The registry must hold retained refs in d, and the tree must
// have been built from the registry's live predicates. The DD must not be
// garbage collected after this call: the manager publishes frozen views
// of it, which a GC would invalidate (run any post-construction GC first).
func NewManagerWith(d *bdd.DD, reg *Registry, tree *Tree, method Method) *Manager {
	m := &Manager{d: d, reg: reg, tree: tree, method: method}
	// Single-threaded until returned, so publishing without mu is sound.
	m.publishLocked()
	return m
}

// publishLocked captures the current tree, DD and liveness set into a
// fresh immutable Snapshot and stores it for the lock-free query path.
// Callers must hold m.mu (or be a constructor with exclusive access).
func (m *Manager) publishLocked() {
	live := predicate.NewBitset(m.reg.NumIDs())
	for id, l := range m.reg.live {
		if l {
			live.Set(id, true)
		}
	}
	view := m.d.Freeze()
	var flat *Flat
	if !m.flatOff {
		if m.flatPlans == nil || m.flatPlans.d != m.d {
			m.flatPlans = newFlatPlanner(m.d)
		}
		start := time.Now()
		flat = compileFlat(m.tree, view, m.flatPlans)
		mFlatBuildDur.Record(time.Since(start).Seconds())
		mFlatBuilds.Inc()
		st := flat.Stats()
		mFlatNodes.Set(int64(st.Nodes))
		mFlatBytes.Set(int64(st.Bytes))
		mFlatMask.Set(int64(st.MaskNodes))
		mFlatTable.Set(int64(st.TableNodes))
		mFlatCubes.Set(int64(st.CubeNodes))
		mFlatFallback.Set(int64(st.FallbackNodes))
	}
	m.snap.Store(&Snapshot{
		tree:    m.tree,
		view:    view,
		flat:    flat,
		live:    live,
		numLive: m.reg.n,
		version: m.version,
		count:   m.tree.CountVisits,
		visits:  m.tree.visits.view(),
	})
	// Publish boundaries are also the metrics flush points: the write
	// lock is held, so the DD's plain counters are stable to read.
	m.d.PublishStats()
	mPublishes.Inc()
	if m.notify != nil {
		select {
		case m.notify <- struct{}{}:
		default: // a signal is already pending; coalesce
		}
	}
}

// Snapshot returns the current published epoch. The result is immutable
// and remains valid (pinned to its epoch) across any number of later
// updates and reconstructions.
func (m *Manager) Snapshot() *Snapshot { return m.snap.Load() }

// ReadPinned runs fn with the published epoch while holding the read
// lock, guaranteeing no Update or Reconstruct swap lands between the pin
// and whatever epoch-coupled state fn captures alongside it. Mutations
// that must stay consistent with the snapshot (the facade's topology
// tables, for instance) happen inside Update's write-locked callback, so
// fn observes them atomically with the epoch. fn must not call back into
// the manager and must not block on other manager users.
func (m *Manager) ReadPinned(fn func(s *Snapshot)) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fn(m.snap.Load())
}

// SetFlatCompile toggles publish-time compilation of the flat classify
// core and republishes the current epoch in the chosen form. On is the
// default; the facade turns it off when APC_FLAT=0, and A/B benchmarks
// flip it to pit the two engines against each other on one manager.
func (m *Manager) SetFlatCompile(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.flatOff = !on
	if !on {
		m.flatPlans = nil
	}
	m.publishLocked()
}

// DD returns the live BDD manager. Callers must only use it inside
// AddPredicate's build callback or while holding no expectation of
// stability across updates; it exists mainly for tests and experiments.
func (m *Manager) DD() *bdd.DD {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.d
}

// Tree returns the live tree (snapshot pointer; safe to read concurrently
// with queries, not with updates).
func (m *Manager) Tree() *Tree {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tree
}

// Version reports the published reconstruction epoch.
func (m *Manager) Version() uint64 { return m.snap.Load().version }

// NumLive reports the number of live predicates in the published epoch.
func (m *Manager) NumLive() int { return m.snap.Load().numLive }

// Classify returns the leaf for pkt together with the epoch it came
// from. It acquires no lock: the published snapshot is loaded once and
// the whole search runs against that epoch.
func (m *Manager) Classify(pkt []byte) (*Node, uint64) {
	return m.snap.Load().Classify(pkt)
}

// Tx is a handle for compound predicate updates executed atomically under
// the manager's write lock; see Manager.Update. Tx methods touch the
// guarded tree and DD directly: Update holds the write lock for the whole
// callback.
type Tx struct {
	m *Manager
	// stats accumulates the structural delta work of the transaction's
	// Add/Remove calls; Update flushes it into the apc_delta_* metrics.
	stats DeltaStats
}

// DD returns the live BDD manager; valid only inside the Update callback.
//
//lint:ignore lockguard Update holds m.mu for the life of the Tx
func (tx *Tx) DD() *bdd.DD { return tx.m.d }

// Ref returns the BDD of predicate id.
func (tx *Tx) Ref(id int32) bdd.Ref { return tx.m.reg.Ref(id) }

// IsLive reports whether predicate id is not tombstoned.
func (tx *Tx) IsLive(id int32) bool { return tx.m.reg.IsLive(id) }

// Add registers a predicate BDD (built in tx.DD()) and splices it into the
// live tree in real time (§VI-A), returning its new global ID. The tree
// update is persistent: pinned snapshots keep the previous version.
//
//lint:ignore lockguard Update holds m.mu for the life of the Tx
func (tx *Tx) Add(ref bdd.Ref) int32 {
	m := tx.m
	m.d.Retain(ref)
	id := m.reg.Add(ref)
	m.tree = m.tree.addPredicate(id, ref, &tx.stats)
	m.updatesSinceSwap++
	if m.journal != nil {
		m.journal = append(m.journal, journalOp{id: id, ref: ref})
	}
	return id
}

// Delete tombstones a predicate (§VI-A): the live tree keeps routing on
// it, but behavior computation skips it; the next reconstruction removes
// it physically.
func (tx *Tx) Delete(id int32) {
	m := tx.m
	m.reg.Delete(id)
	m.updatesSinceSwap++
	if m.journal != nil {
		m.journal = append(m.journal, journalOp{del: true, id: id})
	}
}

// Remove physically deletes a live predicate: the registry slot dies (IDs
// are never reused) and the live tree runs the atom-merge dual of
// AddPredicate, so the partition coarsens immediately instead of waiting
// for a Reconstruct to sweep tombstones. Like Add, the tree update is
// persistent and pinned snapshots keep the previous version.
//
//lint:ignore lockguard Update holds m.mu for the life of the Tx
func (tx *Tx) Remove(id int32) {
	m := tx.m
	m.reg.Delete(id)
	m.tree = m.tree.removePredicate(id, &tx.stats)
	m.updatesSinceSwap++
	if m.journal != nil {
		m.journal = append(m.journal, journalOp{del: true, hard: true, id: id})
	}
}

// Update runs fn under the write lock and republishes the snapshot. All
// predicate changes triggered by one data-plane event (a rule insertion
// can alter several port predicates through LPM shadowing) should share
// one Update so queries see them atomically: concurrent queries answer
// from the previous epoch until the single publish at the end.
func (m *Manager) Update(fn func(tx *Tx)) {
	start := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	tx := &Tx{m: m}
	fn(tx)
	m.publishLocked()
	mUpdates.Inc()
	mUpdateDur.Record(time.Since(start).Seconds())
	if !tx.stats.zero() {
		mDeltaTouched.Add(tx.stats.TouchedLeaves)
		mDeltaSplits.Add(tx.stats.Splits)
		mDeltaMerges.Add(tx.stats.Merges)
		mDeltaApplyDur.Record(time.Since(start).Seconds())
	}
}

// AddPredicate registers a new predicate and updates the live tree in real
// time (§VI-A). The build callback constructs the predicate's BDD in the
// live DD under the write lock; it must not retain the *DD.
func (m *Manager) AddPredicate(build func(d *bdd.DD) bdd.Ref) int32 {
	var id int32
	m.Update(func(tx *Tx) { id = tx.Add(build(tx.DD())) })
	return id
}

// DeletePredicate tombstones a predicate; see Tx.Delete.
func (m *Manager) DeletePredicate(id int32) {
	m.Update(func(tx *Tx) { tx.Delete(id) })
}

// Ref returns the BDD of predicate id in the live DD. The ref is only
// stable until the next Reconstruct swap.
func (m *Manager) Ref(id int32) bdd.Ref {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.reg.Ref(id)
}

// IsLive reports whether predicate id is live in the published epoch.
// Like Classify it is lock-free, so Manager satisfies network.Source
// without reintroducing a mutex on the stage-2 hot path.
func (m *Manager) IsLive(id int32) bool { return m.snap.Load().IsLive(id) }

// LiveIDs returns the live predicate IDs.
func (m *Manager) LiveIDs() []int32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.reg.LiveIDs()
}

// Reconstruct rebuilds an optimized tree from the current live predicates
// and swaps it in (§VI-B). If weighted is true, per-leaf visit counters of
// the old tree are carried over as atom weights so frequently queried atoms
// end up closer to the root (§V-D). Reconstruct is safe to run concurrently
// with Classify/AddPredicate/DeletePredicate; concurrent Reconstruct calls
// serialize.
func (m *Manager) Reconstruct(weighted bool) {
	start := time.Now()
	m.rebuildMu.Lock()
	defer m.rebuildMu.Unlock()
	defer func() { mRebuildDur.Record(time.Since(start).Seconds()) }()

	// Phase 1: open the journal and snapshot the live predicate set.
	m.mu.Lock()
	m.journal = []journalOp{}
	snap := m.reg.Clone()
	oldD := m.d
	type leafWeight struct {
		ref bdd.Ref
		w   float64
	}
	var weights []leafWeight
	if weighted {
		tree := m.tree
		tree.Leaves(func(n *Node) {
			if v := tree.Visits(n); v > 0 {
				weights = append(weights, leafWeight{n.BDD, float64(v)})
			}
		})
	}
	m.mu.Unlock()

	// Phase 2: transfer live predicates (and weighted leaf BDDs) into a
	// private DD. Reading oldD requires the read lock because concurrent
	// updates mutate it.
	newD := bdd.New(oldD.NumVars())
	liveIDs := snap.LiveIDs()
	newRefs := make([]bdd.Ref, snap.NumIDs())
	m.mu.RLock()
	for _, id := range liveIDs {
		newRefs[id] = bdd.Transfer(newD, oldD, snap.Ref(id))
	}
	weightByRef := make(map[bdd.Ref]float64, len(weights))
	for _, lw := range weights {
		weightByRef[bdd.Transfer(newD, oldD, lw.ref)] = lw.w
	}
	m.mu.RUnlock()
	for _, id := range liveIDs {
		newD.Retain(newRefs[id])
	}

	// Phase 3: compute atoms and build the new tree, entirely in the
	// private DD — no locks, queries continue on the old tree.
	liveRefs := make([]bdd.Ref, len(liveIDs))
	intIDs := make([]int, len(liveIDs))
	for i, id := range liveIDs {
		liveRefs[i] = newRefs[id]
		intIDs[i] = int(id)
	}
	atoms := predicate.ComputeMapped(newD, liveRefs, intIDs, snap.NumIDs())
	var atomWeights []float64
	if weighted && len(weightByRef) > 0 {
		atomWeights = make([]float64, atoms.N())
		for i, ref := range atoms.List {
			if w, ok := weightByRef[ref]; ok {
				atomWeights[i] = w
			} else {
				atomWeights[i] = 1 // new or re-cut atom: neutral weight
			}
		}
	}
	newTree := Build(Input{
		D:       newD,
		Preds:   newRefs,
		Live:    liveIDs,
		Atoms:   atoms,
		Weights: atomWeights,
		Rand:    rand.New(rand.NewSource(1)),
	}, m.method)

	// Phase 4: replay updates that arrived during the rebuild, then swap.
	m.mu.Lock()
	for _, op := range m.journal {
		if op.del {
			if !op.hard {
				continue // tombstone: the rebuilt tree keeps routing on it
			}
			// Hard removal journaled mid-rebuild. The new tree placed this
			// predicate (it was live at the phase-1 snapshot, or added by an
			// earlier journal entry), so replay the atom merge too.
			newTree = newTree.RemovePredicate(op.id)
			newRefs[op.id] = bdd.False
			continue
		}
		ref := bdd.Transfer(newD, oldD, op.ref)
		newD.Retain(ref)
		for int32(len(newRefs)) <= op.id {
			newRefs = append(newRefs, bdd.False)
		}
		newRefs[op.id] = ref
		newTree = newTree.AddPredicate(op.id, ref)
	}
	// Point every live registry entry at the new DD; tombstoned slots die.
	for id := range m.reg.refs {
		if m.reg.live[id] {
			m.reg.refs[id] = newRefs[id]
		} else {
			m.reg.refs[id] = bdd.False
		}
	}
	// Retire the old epoch's counters: flush the abandoned DD's work
	// stats one last time and bank the old lineage's visit total.
	m.d.PublishStats()
	m.retiredVisits += m.tree.visits.total()
	m.d = newD
	m.tree = newTree
	m.version++
	mSwaps.Inc()
	// Updates replayed from the journal are already in the new tree but
	// count toward the next rebuild trigger, since the new tree was not
	// optimized for them.
	m.updatesSinceSwap = len(m.journal)
	m.journal = nil
	// Publish the new epoch. The old DD is abandoned whole — never GC'd —
	// so snapshots pinned to earlier epochs keep evaluating against it.
	m.publishLocked()
	m.mu.Unlock()
}

// UpdatesSinceSwap reports tree updates applied since the last
// reconstruction swap.
func (m *Manager) UpdatesSinceSwap() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.updatesSinceSwap
}

// AutoReconstruct starts the §VI-B reconstruction policy on its own
// goroutine: every interval it checks whether at least threshold updates
// hit the live tree since the last swap and, if so, rebuilds (optionally
// distribution-aware) and swaps. The returned stop function halts the
// policy and waits for any in-flight rebuild to finish; it is idempotent,
// so callers may both defer it and invoke it early.
func (m *Manager) AutoReconstruct(threshold int, interval time.Duration, weighted bool) (stop func()) {
	if threshold < 1 {
		panic("aptree: AutoReconstruct threshold must be >= 1")
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if m.UpdatesSinceSwap() >= threshold {
					m.Reconstruct(weighted)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}
