package aptree

import (
	"math/bits"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// DeltaStats tallies the structural work of one delta transaction: leaves
// copied or created (the touched set), atom splits (AddPredicate on a
// straddling leaf) and atom merges (RemovePredicate joining two sibling
// regions into one atom). They feed the apc_delta_* counters.
type DeltaStats struct {
	TouchedLeaves uint64
	Splits        uint64
	Merges        uint64
}

func (s *DeltaStats) add(o DeltaStats) {
	s.TouchedLeaves += o.TouchedLeaves
	s.Splits += o.Splits
	s.Merges += o.Merges
}

// zero reports whether the transaction did no structural delta work.
func (s DeltaStats) zero() bool { return s == DeltaStats{} }

// PredAdd names one predicate addition of a delta batch.
type PredAdd struct {
	ID int32
	P  bdd.Ref
}

// ApplyDelta applies a batch of predicate removals followed by additions as
// one persistent copy-on-write derivation, returning the new tree version
// and the structural work done. Only leaves whose label intersects the
// delta region are copied; everything else is shared by pointer with the
// receiver, exactly like AddPredicate, so pinned snapshots of older
// versions keep classifying untouched. Removals run first so an old/new
// predicate swap (the delta form of an LPM change) never doubles the
// refinement in between.
func (t *Tree) ApplyDelta(removals []int32, adds []PredAdd) (*Tree, DeltaStats) {
	var st DeltaStats
	nt := t
	for _, id := range removals {
		nt = nt.removePredicate(id, &st)
	}
	for _, a := range adds {
		nt = nt.addPredicate(a.ID, a.P, &st)
	}
	return nt, st
}

// RemovePredicate physically removes predicate id from the tree — the dual
// of AddPredicate: every node routing on id is eliminated and the sibling
// leaves its removal leaves indistinguishable are merged back into one atom
// (disjunction of their BDDs), restoring the coarsest partition for the
// shrunken predicate set. Like AddPredicate the update is persistent: the
// receiver is untouched, unchanged subtrees are shared by pointer, and no
// BDD reference is released before the epoch boundary. Removing an ID the
// tree never placed — including one registered with the empty predicate
// bdd.False, as an all-deny ACL is — returns the receiver unchanged.
func (t *Tree) RemovePredicate(id int32) *Tree {
	var st DeltaStats
	return t.removePredicate(id, &st)
}

func (t *Tree) removePredicate(id int32, st *DeltaStats) *Tree {
	if int(id) >= len(t.preds) || t.preds[id] == bdd.False {
		// Never placed, or an empty predicate (an all-deny ACL registers
		// bdd.False): no leaf carries the bit and no node routes on the ID,
		// so removal is structurally a no-op and the version is shared.
		return t
	}
	nt := &Tree{
		D:           t.D,
		preds:       append([]bdd.Ref(nil), t.preds...),
		numLeaves:   t.numLeaves,
		nextAtom:    t.nextAtom,
		CountVisits: t.CountVisits,
		visits:      t.visits,
	}
	nt.preds[id] = bdd.False
	nt.root = nt.removeRec(t.root, id, st)
	nt.visits.grow(int(nt.nextAtom))
	nt.debugCheckPartition()
	return nt
}

// removeRec returns the updated version of n with predicate id removed,
// sharing n whenever the subtree carries no trace of id.
func (t *Tree) removeRec(n *Node, id int32, st *DeltaStats) *Node {
	if n.IsLeaf() {
		if !n.Member.Get(int(id)) {
			return n
		}
		m := n.Member.Clone(len(t.preds))
		m.Set(int(id), false)
		st.TouchedLeaves++
		return &Node{Pred: -1, Depth: n.Depth, AtomID: n.AtomID, BDD: n.BDD, Member: m}
	}
	if n.Pred != id {
		nt, nf := t.removeRec(n.T, id, st), t.removeRec(n.F, id, st)
		if nt == n.T && nf == n.F {
			return n
		}
		return &Node{Pred: n.Pred, Depth: n.Depth, T: nt, F: nf}
	}
	// The router on id disappears; its two subtrees (already cleansed of
	// bit id) cover complementary halves of the region reaching n and are
	// merged into one subtree at n's depth.
	return t.merge(t.removeRec(n.T, id, st), t.removeRec(n.F, id, st), n.Depth, st)
}

// merge combines two subtrees over disjoint header regions into one correct
// subtree rooted at the given depth. Leaves with identical membership
// vectors — which the removed predicate alone separated — fuse into one
// atom; leaves still distinguished by some predicate are re-split under a
// router on any differing bit. Every returned node is fresh (or a shared
// leaf via redepth), so Depth fields stay consistent without mutating
// shared structure.
func (t *Tree) merge(a, b *Node, depth int32, st *DeltaStats) *Node {
	if a.IsLeaf() && b.IsLeaf() {
		if j := firstDiffBit(a.Member, b.Member); j >= 0 {
			// Still distinguished: route on the differing predicate. The
			// leaf inside predicate j goes to the true side. Neither leaf
			// straddles j (leaves never straddle any present predicate), so
			// a single router restores the search invariant.
			tl, fl := a, b
			if !a.Member.Get(j) {
				tl, fl = b, a
			}
			return &Node{
				Pred:  int32(j),
				Depth: depth,
				T:     t.redepth(tl, depth+1, st),
				F:     t.redepth(fl, depth+1, st),
			}
		}
		// Indistinguishable by every remaining predicate: one atom again.
		ref := t.D.Or(a.BDD, b.BDD)
		t.D.Retain(ref)
		leaf := &Node{
			Pred:   -1,
			Depth:  depth,
			AtomID: t.nextAtom,
			BDD:    ref,
			Member: a.Member.Clone(len(t.preds)),
		}
		t.nextAtom++
		t.numLeaves--
		st.Merges++
		st.TouchedLeaves++
		return leaf
	}
	// At least one side is internal: partition both by that side's root
	// predicate and merge the halves.
	q := a.Pred
	if a.IsLeaf() {
		q = b.Pred
	}
	aT, aF := restrict(a, q)
	bT, bF := restrict(b, q)
	return &Node{
		Pred:  q,
		Depth: depth,
		T:     t.mergeHalf(aT, bT, depth+1, st),
		F:     t.mergeHalf(aF, bF, depth+1, st),
	}
}

// mergeHalf merges two possibly-absent region halves.
func (t *Tree) mergeHalf(a, b *Node, depth int32, st *DeltaStats) *Node {
	switch {
	case a == nil && b == nil:
		panic("aptree: merge produced an empty region")
	case a == nil:
		return t.redepth(b, depth, st)
	case b == nil:
		return t.redepth(a, depth, st)
	}
	return t.merge(a, b, depth, st)
}

// restrict partitions subtree n by predicate q, returning the subtrees
// covering n's region inside q and outside q (nil when empty). It relies on
// the partition invariant: every leaf either implies q or is disjoint from
// it, so a bit test routes whole leaves. Nodes already routing on q
// shortcut to their children; other routers are rebuilt only when both
// halves survive on both sides. Depths of returned nodes are not
// normalized — merge and redepth fix them.
func restrict(n *Node, q int32) (inside, outside *Node) {
	if n.IsLeaf() {
		if n.Member.Get(int(q)) {
			return n, nil
		}
		return nil, n
	}
	if n.Pred == q {
		return n.T, n.F
	}
	tIn, tOut := restrict(n.T, q)
	fIn, fOut := restrict(n.F, q)
	return joinHalves(n.Pred, tIn, fIn), joinHalves(n.Pred, tOut, fOut)
}

// joinHalves rebuilds a router over the surviving halves of its children;
// a router with one empty side is unnecessary and collapses to the other.
func joinHalves(p int32, t, f *Node) *Node {
	switch {
	case t == nil:
		return f
	case f == nil:
		return t
	}
	return &Node{Pred: p, T: t, F: f}
}

// redepth returns subtree n with every node's Depth consistent for a root
// at the given depth, sharing any node (and whole subtree) whose depths are
// already correct. Shared leaves keep their BDD reference without a new
// retain — identical to AddPredicate's copy rule, release happens at the
// epoch boundary.
func (t *Tree) redepth(n *Node, depth int32, st *DeltaStats) *Node {
	if n.IsLeaf() {
		if n.Depth == depth {
			return n
		}
		st.TouchedLeaves++
		return &Node{Pred: -1, Depth: depth, AtomID: n.AtomID, BDD: n.BDD, Member: n.Member}
	}
	nt, nf := t.redepth(n.T, depth+1, st), t.redepth(n.F, depth+1, st)
	if nt == n.T && nf == n.F && n.Depth == depth {
		return n
	}
	return &Node{Pred: n.Pred, Depth: depth, T: nt, F: nf}
}

// firstDiffBit returns the lowest bit index at which the two membership
// vectors differ, or -1 if they are equal. Vectors of different capacity
// compare with missing words read as zero.
func firstDiffBit(a, b predicate.Bitset) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for w := 0; w < n; w++ {
		var x, y uint64
		if w < len(a) {
			x = a[w]
		}
		if w < len(b) {
			y = b[w]
		}
		if d := x ^ y; d != 0 {
			return w*64 + bits.TrailingZeros64(d)
		}
	}
	return -1
}
