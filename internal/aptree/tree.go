// Package aptree implements the AP Tree, the core data structure of AP
// Classifier: a binary decision tree over predicates that classifies a
// packet to its atomic predicate.
//
// Internal nodes are labeled by predicates; searching evaluates the packet
// against the label's BDD and descends left (true) or right (false) until a
// leaf, which names the packet's atomic predicate and carries its
// membership vector (one bit per predicate). The paper's contribution is
// the ordering of predicates on the tree: this package implements the
// fixed/random-order construction, Quick-Ordering (§V-B), the optimized
// OAPT construction (§V-C) with its superior/inferior pairwise selection
// heuristic, and the distribution-aware weighted variant (§V-D). Pruning
// (§IV-A) is built into every construction: a predicate that does not split
// the atoms reaching a subtree is never placed there.
package aptree

import (
	"fmt"
	"math/rand"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// Method selects an AP Tree construction algorithm.
type Method int

// Construction methods.
const (
	// MethodOrder places predicates in the order given (after pruning).
	MethodOrder Method = iota
	// MethodRandom shuffles the predicates with the supplied rand source.
	MethodRandom
	// MethodQuick is Quick-Ordering: descending |R(p)| (§V-B).
	MethodQuick
	// MethodOAPT is the optimized construction of §V-C, using the
	// superior/inferior relation to pick each subtree root.
	MethodOAPT
)

func (m Method) String() string {
	switch m {
	case MethodOrder:
		return "Order"
	case MethodRandom:
		return "Random"
	case MethodQuick:
		return "Quick-Ordering"
	case MethodOAPT:
		return "OAPT"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Node is an AP Tree node. Internal nodes have Pred >= 0 and two children;
// leaves have Pred == -1 and carry the atom they represent.
type Node struct {
	Pred  int32 // predicate ID evaluated at this node, -1 for leaves
	T, F  *Node // subtrees for predicate true / false
	Depth int32 // number of predicates evaluated to reach this node

	// Leaf payload.
	AtomID int32            // tree-local atom identifier
	BDD    bdd.Ref          // the atom: conjunction of decisions on the path
	Member predicate.Bitset // bit j set iff this atom implies predicate j
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.Pred < 0 }

// Tree is an AP Tree over a predicate set.
type Tree struct {
	D    *bdd.DD
	root *Node
	// preds maps predicate ID -> BDD for every predicate placed in the
	// tree or added later (including tombstoned ones, which still route).
	preds []bdd.Ref

	numLeaves int
	nextAtom  int32
	// CountVisits enables the per-atom counters used by the
	// distribution-aware rebuild. On by default.
	CountVisits bool
	// visits holds the per-atom query counters, keyed by AtomID and
	// shared across the persistent versions AddPredicate derives from
	// this tree, so a reconstruction sees the whole lineage's history.
	visits *visitCounters
}

// Input bundles what a construction needs.
type Input struct {
	D     *bdd.DD
	Preds []bdd.Ref        // predicate BDDs indexed by global predicate ID
	Live  []int32          // IDs eligible for placement in the tree
	Atoms *predicate.Atoms // atoms of the live predicates, ID-mapped to Preds
	// Weights holds one weight per atom for the distribution-aware
	// construction (§V-D); nil means uniform.
	Weights []float64
	// Rand drives MethodRandom; ignored otherwise.
	Rand *rand.Rand
	// NoSplitFilter disables dropping non-splitting predicates from
	// subtree candidate sets. The filter is semantics-preserving (a
	// predicate that does not split an atom set cannot split any subset);
	// the switch exists only for the ablation benchmark.
	NoSplitFilter bool
}

// Build constructs an AP Tree with the chosen method.
func Build(in Input, method Method) *Tree {
	t := &Tree{D: in.D, preds: append([]bdd.Ref(nil), in.Preds...), CountVisits: true}
	b := &builder{in: in, t: t, rsets: make([]predicate.AtomSet, len(in.Preds))}
	for _, id := range in.Live {
		if int(id) >= len(in.Preds) {
			panic(fmt.Sprintf("aptree: live id %d out of range", id))
		}
		b.rsets[id] = in.Atoms.RSet(int(id))
	}
	all := predicate.AtomRange(0, int32(in.Atoms.N()))
	switch method {
	case MethodOrder:
		t.root = b.buildFixed(in.Live, all, 0)
	case MethodRandom:
		order := append([]int32(nil), in.Live...)
		in.Rand.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		t.root = b.buildFixed(order, all, 0)
	case MethodQuick:
		t.root = b.buildFixed(quickOrder(in), all, 0)
	case MethodOAPT:
		t.root = b.buildOAPT(append([]int32(nil), in.Live...), all, 0)
	default:
		panic(fmt.Sprintf("aptree: unknown method %v", method))
	}
	t.nextAtom = int32(in.Atoms.N())
	t.visits = newVisitCounters(int(t.nextAtom))
	t.debugCheckPartition()
	return t
}

type builder struct {
	in    Input
	t     *Tree
	rsets []predicate.AtomSet // R(p) by predicate ID, precomputed for live IDs
}

func (b *builder) weight(s predicate.AtomSet) float64 {
	if b.in.Weights == nil {
		return float64(s.Len())
	}
	w := 0.0
	s.Each(func(a int32) bool {
		w += b.in.Weights[a]
		return true
	})
	return w
}

func (b *builder) rset(p int32) predicate.AtomSet { return b.rsets[p] }

func (b *builder) leaf(atom int32, depth int32) *Node {
	ref := b.in.Atoms.List[atom]
	b.t.D.Retain(ref)
	b.t.numLeaves++
	return &Node{
		Pred:   -1,
		Depth:  depth,
		AtomID: atom,
		BDD:    ref,
		Member: b.in.Atoms.Member[atom].Clone(len(b.in.Preds)),
	}
}

// buildFixed places predicates in the given order, skipping (pruning) any
// predicate that does not split the atom set reaching the node.
func (b *builder) buildFixed(order []int32, s predicate.AtomSet, depth int32) *Node {
	if s.Len() == 1 {
		return b.leaf(s.Min(), depth)
	}
	for i, p := range order {
		st := s.Intersect(b.rset(p))
		if st.Empty() || st.Len() == s.Len() {
			continue
		}
		sf := s.Diff(b.rset(p))
		return &Node{
			Pred:  p,
			Depth: depth,
			T:     b.buildFixed(order[i+1:], st, depth+1),
			F:     b.buildFixed(order[i+1:], sf, depth+1),
		}
	}
	panic(fmt.Sprintf("aptree: %d atoms indistinguishable by remaining predicates", s.Len()))
}

// quickOrder returns live predicates in descending |R(p)| (or descending
// weight of R(p) when weights are set), the Quick-Ordering of §V-B.
func quickOrder(in Input) []int32 {
	b := builder{in: in}
	order := append([]int32(nil), in.Live...)
	w := make(map[int32]float64, len(order))
	for _, p := range order {
		w[p] = b.weight(in.Atoms.RSet(int(p)))
	}
	sortStableBy(order, func(a, c int32) bool { return w[a] > w[c] })
	return order
}

// buildOAPT is the optimized construction: at each subtree it selects a
// predicate not inferior to any other candidate (§V-C) and recurses with
// per-subtree candidate sets, so sibling subtrees may use different orders.
func (b *builder) buildOAPT(q []int32, s predicate.AtomSet, depth int32) *Node {
	if s.Len() == 1 {
		return b.leaf(s.Min(), depth)
	}
	// Restrict candidates to predicates that split s, and cache their
	// restricted atom sets.
	type cand struct {
		p  int32
		st predicate.AtomSet // s ∩ R(p)
	}
	var cands []cand
	for _, p := range q {
		st := s.Intersect(b.rset(p))
		if st.Empty() || st.Len() == s.Len() {
			continue
		}
		cands = append(cands, cand{p, st})
	}
	if len(cands) == 0 {
		panic(fmt.Sprintf("aptree: %d atoms indistinguishable by remaining predicates", s.Len()))
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if b.superior(cands[i].st, cands[best].st, s) < 0 {
			best = i
		}
	}
	ps, st := cands[best].p, cands[best].st
	sf := s.Diff(st)

	var next []int32
	if b.in.NoSplitFilter {
		// Ablation: keep every unused predicate as a candidate below.
		next = make([]int32, 0, len(q)-1)
		for _, p := range q {
			if p != ps {
				next = append(next, p)
			}
		}
	} else {
		next = make([]int32, 0, len(cands)-1)
		for _, c := range cands {
			if c.p != ps {
				next = append(next, c.p)
			}
		}
	}
	return &Node{
		Pred:  ps,
		Depth: depth,
		T:     b.buildOAPT(next, st, depth+1),
		F:     b.buildOAPT(next, sf, depth+1),
	}
}

// superior compares two candidate predicates restricted to the atom set s,
// per the four-case analysis of §V-C (Fig. 6), generalized to weighted
// atoms (§V-D replaces cardinalities by weight sums). si and sj are the
// restrictions s∩R(pi) and s∩R(pj). It returns -1 if pi is superior
// (strictly better as the subtree root), +1 if pj is, and 0 if they are in
// the same order.
func (b *builder) superior(si, sj, s predicate.AtomSet) int {
	nij := si.IntersectLen(sj)
	wS := b.weight(s)
	wi, wj := b.weight(si), b.weight(sj)
	cmp := func(x, y float64) int {
		switch {
		case x < y:
			return -1
		case x > y:
			return +1
		}
		return 0
	}
	switch {
	case nij == 0:
		// Fig 6(b): disjoint within s. Superior has smaller w(s∩R(¬p)),
		// i.e. larger w(s∩R(p)).
		return cmp(wS-wi, wS-wj)
	case nij == si.Len() && nij == sj.Len():
		// Identical restrictions: interchangeable.
		return 0
	case nij == sj.Len():
		// Fig 6(c): pj ⊂ pi within s.
		return cmp(wi, wS-wj)
	case nij == si.Len():
		// Fig 6(d): pi ⊂ pj within s.
		return cmp(wS-wi, wj)
	default:
		// Fig 6(a): genuine overlap, same order.
		return 0
	}
}

// Root returns the tree root (a single leaf for an empty predicate set).
func (t *Tree) Root() *Node { return t.root }

// NumLeaves reports the number of leaves (atoms represented by the tree).
func (t *Tree) NumLeaves() int { return t.numLeaves }

// Pred returns the BDD of predicate id as known to this tree.
func (t *Tree) Pred(id int32) bdd.Ref { return t.preds[id] }

// NumPreds reports the size of the predicate ID space known to the tree.
func (t *Tree) NumPreds() int { return len(t.preds) }

// AtomIDBound returns an exclusive upper bound on the AtomIDs carried by
// this tree's leaves. AtomIDs are never reused within a tree lineage, so
// the bound sizes flat per-atom tables (the behavior cache) that index by
// AtomID.
func (t *Tree) AtomIDBound() int32 { return t.nextAtom }

// Classify walks the tree and returns the leaf whose atom contains the
// packet. It is the stage-1 hot path and does not allocate.
func (t *Tree) Classify(pkt []byte) *Node {
	n := t.root
	d := t.D
	for !n.IsLeaf() {
		if d.EvalBits(t.preds[n.Pred], pkt) {
			n = n.T
		} else {
			n = n.F
		}
	}
	if t.CountVisits {
		t.visits.add(n.AtomID)
	}
	return n
}

// Leaves calls fn for every leaf, in left-to-right order.
func (t *Tree) Leaves(fn func(*Node)) {
	var walk func(*Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			fn(n)
			return
		}
		walk(n.T)
		walk(n.F)
	}
	walk(t.root)
}

// SumDepth returns the total depth over all leaves (the quantity F(Q,S)
// minimized by the optimal construction).
func (t *Tree) SumDepth() int {
	sum := 0
	t.Leaves(func(n *Node) { sum += int(n.Depth) })
	return sum
}

// AverageDepth returns the mean leaf depth, the paper's primary tree
// quality metric.
func (t *Tree) AverageDepth() float64 {
	if t.numLeaves == 0 {
		return 0
	}
	return float64(t.SumDepth()) / float64(t.numLeaves)
}

// WeightedAverageDepth returns the query-weighted mean leaf depth under a
// per-atom weight lookup (atoms missing from the map weigh 1).
func (t *Tree) WeightedAverageDepth(weight func(atom int32) float64) float64 {
	var num, den float64
	t.Leaves(func(n *Node) {
		w := weight(n.AtomID)
		num += w * float64(n.Depth)
		den += w
	})
	if den == 0 {
		return 0
	}
	return num / den
}

// MaxDepth returns the deepest leaf's depth.
func (t *Tree) MaxDepth() int {
	max := 0
	t.Leaves(func(n *Node) {
		if int(n.Depth) > max {
			max = int(n.Depth)
		}
	})
	return max
}

// DepthHistogram returns counts of leaves per depth, for the CDF figure.
func (t *Tree) DepthHistogram() []int {
	h := make([]int, t.MaxDepth()+1)
	t.Leaves(func(n *Node) { h[n.Depth]++ })
	return h
}

// Visits returns leaf n's query counter (the sum over counter stripes).
func (t *Tree) Visits(n *Node) uint64 { return t.visits.count(n.AtomID) }

// ResetVisits zeroes all leaf counters.
func (t *Tree) ResetVisits() { t.visits.reset() }

// Drop releases the tree's BDD retentions (leaf atoms). The tree must not
// be used afterwards.
func (t *Tree) Drop() {
	t.Leaves(func(n *Node) { t.D.Release(n.BDD) })
}

// Validate checks structural invariants: leaf BDDs are non-false, pairwise
// disjoint and cover the header space; every internal node's children
// partition its reachable set; depths are consistent; and each leaf's
// membership vector matches BDD implication for every live predicate ID in
// ids. It is O(n²) in BDD operations and intended for tests.
func (t *Tree) Validate(ids []int32) error {
	d := t.D
	union := bdd.False
	var leaves []*Node
	t.Leaves(func(n *Node) { leaves = append(leaves, n) })
	if len(leaves) != t.numLeaves {
		return fmt.Errorf("leaf count mismatch: walked %d, recorded %d", len(leaves), t.numLeaves)
	}
	for i, n := range leaves {
		if n.BDD == bdd.False {
			return fmt.Errorf("leaf %d has false BDD", i)
		}
		if d.And(union, n.BDD) != bdd.False {
			return fmt.Errorf("leaf %d overlaps earlier leaves", i)
		}
		union = d.Or(union, n.BDD)
		for _, id := range ids {
			want := d.Implies(n.BDD, t.preds[id])
			if n.Member.Get(int(id)) != want {
				return fmt.Errorf("leaf %d: membership bit %d = %v, implication = %v", i, id, n.Member.Get(int(id)), want)
			}
			if !want && !d.Disjoint(n.BDD, t.preds[id]) {
				return fmt.Errorf("leaf %d straddles predicate %d", i, id)
			}
		}
	}
	if union != bdd.True {
		return fmt.Errorf("leaves do not cover the header space")
	}
	var check func(n *Node, depth int32) error
	check = func(n *Node, depth int32) error {
		if n.Depth != depth {
			return fmt.Errorf("node depth %d, want %d", n.Depth, depth)
		}
		if n.IsLeaf() {
			return nil
		}
		if n.T == nil || n.F == nil {
			return fmt.Errorf("internal node with missing child")
		}
		if err := check(n.T, depth+1); err != nil {
			return err
		}
		return check(n.F, depth+1)
	}
	return check(t.root, 0)
}

// sortStableBy is insertion sort; candidate lists are short-lived and the
// stdlib sort.SliceStable would allocate a closure wrapper per call site
// anyway — but mainly this keeps tie order (insertion order) explicit.
func sortStableBy(s []int32, less func(a, b int32) bool) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
