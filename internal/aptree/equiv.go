package aptree

import (
	"fmt"

	"apclassifier/internal/bdd"
)

// SemanticallyEqual reports whether two trees over the same DD classify
// every packet into the same partition with the same membership bits for
// the given predicate IDs — the correctness notion for comparing
// construction methods and for checking reconstruction results against the
// incremental tree.
//
// The check is exact (BDD-level), not sampled: it walks both leaf sets and
// verifies each leaf of a is covered by leaves of b with identical
// membership bits on ids, and vice versa is implied by both partitioning
// the same space.
func SemanticallyEqual(a, b *Tree, ids []int32) error {
	if a.D != b.D {
		return fmt.Errorf("aptree: trees live in different DDs")
	}
	d := a.D
	var bLeaves []*Node
	b.Leaves(func(n *Node) { bLeaves = append(bLeaves, n) })

	var err error
	a.Leaves(func(la *Node) {
		if err != nil {
			return
		}
		remaining := la.BDD
		for _, lb := range bLeaves {
			inter := d.And(remaining, lb.BDD)
			if inter == bdd.False {
				continue
			}
			for _, id := range ids {
				if la.Member.Get(int(id)) != lb.Member.Get(int(id)) {
					err = fmt.Errorf("aptree: overlapping leaves disagree on predicate %d", id)
					return
				}
			}
			remaining = d.Diff(remaining, lb.BDD)
			if remaining == bdd.False {
				break
			}
		}
		if remaining != bdd.False {
			err = fmt.Errorf("aptree: leaf of a not covered by b's partition")
		}
	})
	return err
}

// Stats summarizes a tree for reporting.
type Stats struct {
	Leaves      int
	SumDepth    int
	AvgDepth    float64
	MaxDepth    int
	InternalMax int // deepest internal node chain == MaxDepth
}

// Stats computes summary statistics in one walk.
func (t *Tree) Stats() Stats {
	s := Stats{Leaves: t.numLeaves}
	t.Leaves(func(n *Node) {
		s.SumDepth += int(n.Depth)
		if int(n.Depth) > s.MaxDepth {
			s.MaxDepth = int(n.Depth)
		}
	})
	if s.Leaves > 0 {
		s.AvgDepth = float64(s.SumDepth) / float64(s.Leaves)
	}
	s.InternalMax = s.MaxDepth
	return s
}
