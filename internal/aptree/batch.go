package aptree

import (
	"bytes"
	"slices"

	"apclassifier/internal/bdd"
)

// Batched stage-1 classification. A batch descends the tree as groups of
// packets, not one packet at a time:
//
//   - Exact-duplicate headers are collapsed first (production traffic
//     arrives in flow bursts, so a batch window usually holds far fewer
//     distinct headers than packets — the representative-header-set
//     collapse of Boufkhad et al.). Each distinct header is classified
//     once and its leaf fanned back out to every duplicate.
//   - The distinct headers then descend by group-by-branch: at each tree
//     node the group is partitioned by one membership decision per
//     packet, but the node — its predicate ref, its BDD root, its child
//     pointers — is visited once per group, so tree-node and cache-line
//     costs are amortized across the batch.
//
// Visit counters are bumped once per leaf group with the group's total
// packet count (duplicates included), so the §V-D distribution statistics
// are identical to classifying the batch packet by packet.

// evaluator abstracts the two BDD evaluation backends a descent can run
// against: the live DD (Tree.ClassifyBatch) and a frozen epoch view
// (Snapshot.ClassifyBatch).
type evaluator interface {
	EvalBits(f bdd.Ref, bits []byte) bool
}

// BatchScratch holds the reusable index buffers of a batched descent.
// The zero value is ready to use; buffers grow to the largest batch seen
// and are retained, so steady-state batches of a fixed size allocate
// nothing. A BatchScratch is not safe for concurrent use.
type BatchScratch struct {
	order  []int32 // packet indices sorted by header bytes
	idx    []int32 // distinct-header representatives, permuted by the descent
	tmp    []int32 // partition spill buffer, same length as idx
	weight []int32 // weight[i]: packets collapsed onto representative i
}

// prepare sizes the buffers for an n-packet batch.
func (sc *BatchScratch) prepare(n int) {
	if cap(sc.order) < n {
		sc.order = make([]int32, n)
		sc.idx = make([]int32, n)
		sc.tmp = make([]int32, n)
		sc.weight = make([]int32, n)
	}
	sc.order = sc.order[:n]
	sc.idx = sc.idx[:0]
	sc.tmp = sc.tmp[:n]
	sc.weight = sc.weight[:n]
}

// classifyBatch is the shared batch pipeline around any descent engine:
// collapse duplicate headers, hand the distinct representatives to search —
// which descends them and writes their leaves into out — then fan each
// representative's leaf back out to its duplicates. Both the pointer and
// the flat engine plug in through search, so the collapse and fanout logic
// (and its duplicate-weight accounting) exists exactly once.
func classifyBatch(sc *BatchScratch, pkts [][]byte, out []*Node, search func(idx, tmp, weight []int32)) {
	if len(out) < len(pkts) {
		panic("aptree: ClassifyBatch output slice shorter than the batch")
	}
	if len(pkts) == 0 {
		return
	}
	sc.prepare(len(pkts))
	for i := range sc.order {
		sc.order[i] = int32(i)
	}
	slices.SortFunc(sc.order, func(a, b int32) int {
		return bytes.Compare(pkts[a], pkts[b])
	})
	// Runs of equal headers collapse to one representative with a count.
	for k := 0; k < len(sc.order); {
		rep := sc.order[k]
		run := int32(1)
		for k+int(run) < len(sc.order) && bytes.Equal(pkts[sc.order[k+int(run)]], pkts[rep]) {
			run++
		}
		sc.idx = append(sc.idx, rep)
		sc.weight[rep] = run
		k += int(run)
	}
	search(sc.idx, sc.tmp, sc.weight)
	// Fan each representative's leaf out to its duplicates: equal headers
	// are adjacent in order, so one linear pass suffices.
	rep := sc.order[0]
	for _, i := range sc.order[1:] {
		if bytes.Equal(pkts[i], pkts[rep]) {
			out[i] = out[rep]
		} else {
			rep = i
		}
	}
}

// descend classifies the packet group idx by group-by-branch descent from
// n, writing each packet's leaf into out. idx is permuted in place; tmp is
// a spill buffer at least as long. visit is called once per leaf group
// with the group's total packet weight.
func descend(ev evaluator, preds []bdd.Ref, n *Node, pkts [][]byte, idx, tmp []int32, weight []int32, out []*Node, visit func(atom int32, w uint64)) {
	for !n.IsLeaf() {
		p := preds[n.Pred]
		nt, nf := 0, 0
		for k := 0; k < len(idx); k++ {
			i := idx[k]
			if ev.EvalBits(p, pkts[i]) {
				idx[nt] = i // nt <= k: never overtakes the read cursor
				nt++
			} else {
				tmp[nf] = i
				nf++
			}
		}
		copy(idx[nt:], tmp[:nf])
		switch {
		case nf == 0:
			n = n.T
		case nt == 0:
			n = n.F
		default:
			descend(ev, preds, n.T, pkts, idx[:nt], tmp, weight, out, visit)
			descend(ev, preds, n.F, pkts, idx[nt:], tmp, weight, out, visit)
			return
		}
	}
	var w uint64
	for _, i := range idx {
		out[i] = n
		w += uint64(weight[i])
	}
	if visit != nil {
		visit(n.AtomID, w)
	}
}

// ClassifyBatch classifies every packet of the batch, writing packet i's
// leaf to out[i]. It is equivalent to calling Classify per packet —
// including the per-atom visit totals — but amortizes tree-node costs
// across the batch and classifies duplicate headers once. out must be at
// least as long as pkts.
func (t *Tree) ClassifyBatch(pkts [][]byte, out []*Node) {
	t.ClassifyBatchWith(&BatchScratch{}, pkts, out)
}

// ClassifyBatchWith is ClassifyBatch with caller-owned scratch buffers,
// for allocation-free steady-state batching.
func (t *Tree) ClassifyBatchWith(sc *BatchScratch, pkts [][]byte, out []*Node) {
	visit := func(atom int32, w uint64) { t.visits.addN(atom, w) }
	if !t.CountVisits {
		visit = nil
	}
	classifyBatch(sc, pkts, out, func(idx, tmp, weight []int32) {
		descend(t.D, t.preds, t.root, pkts, idx, tmp, weight, out, visit)
	})
}

// ClassifyBatch runs the batched stage-1 search against this epoch; see
// Tree.ClassifyBatch. Like Classify it takes no lock; node BDDs evaluate
// through the frozen view.
func (s *Snapshot) ClassifyBatch(pkts [][]byte, out []*Node) {
	s.ClassifyBatchWith(&BatchScratch{}, pkts, out)
}

// ClassifyBatchWith is the epoch-pinned batch search with caller-owned
// scratch, the allocation-free form used by the facade's batch pipeline.
// Like single-packet Classify it descends the epoch's compiled flat core
// when one exists and the pointer tree otherwise, with identical answers
// and visit accounting either way.
func (s *Snapshot) ClassifyBatchWith(sc *BatchScratch, pkts [][]byte, out []*Node) {
	visit := func(atom int32, w uint64) { s.visits.addN(atom, w) }
	if !s.count {
		visit = nil
	}
	classifyBatch(sc, pkts, out, func(idx, tmp, weight []int32) {
		if f := s.flat; f != nil {
			s.debugCheckFlat()
			f.descend(f.root, pkts, idx, tmp, weight, out, visit)
		} else {
			descend(s.view, s.tree.preds, s.tree.root, pkts, idx, tmp, weight, out, visit)
		}
	})
}

// ClassifyBatchPointerWith is ClassifyBatchWith forced onto the pointer
// engine, with no visit accounting — the batched reference the
// differential suite compares the flat descent against.
func (s *Snapshot) ClassifyBatchPointerWith(sc *BatchScratch, pkts [][]byte, out []*Node) {
	classifyBatch(sc, pkts, out, func(idx, tmp, weight []int32) {
		descend(s.view, s.tree.preds, s.tree.root, pkts, idx, tmp, weight, out, nil)
	})
}
