package aptree

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
)

// flatTestManager builds a manager whose predicate set exercises every
// lowering tier: prefix minterms (mask nodes), unions of short prefixes
// confined to a few bits (table nodes), wide unions of long prefixes (cube
// nodes), and dense xor predicates whose satisfying-path count blows the
// cube cap (frozen-view fallback).
func flatTestManager(t *testing.T, seed int64) (*Manager, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := NewManager(32, MethodOAPT)
	m.Update(func(tx *Tx) {
		d := tx.DD()
		for i := 0; i < 12; i++ { // minterms
			tx.Add(d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(17), 32))
		}
		for i := 0; i < 8; i++ { // few-bit unions: truth tables
			a := d.FromPrefix(0, uint64(rng.Uint32()), 3+rng.Intn(6), 32)
			b := d.FromPrefix(0, uint64(rng.Uint32()), 3+rng.Intn(6), 32)
			tx.Add(d.Or(a, b))
		}
		for i := 0; i < 4; i++ { // wide unions of long prefixes: cube lists
			a := d.FromPrefix(0, uint64(rng.Uint32()), 20+rng.Intn(12), 32)
			b := d.FromPrefix(0, uint64(rng.Uint32()), 20+rng.Intn(12), 32)
			tx.Add(d.Or(a, b))
		}
		for i := 0; i < 2; i++ { // dense xors: 2^13 satisfying paths, fallback
			x := d.FromPrefix(14*i, 1, 1, 1)
			for j := 1; j < 14; j++ {
				x = d.Xor(x, d.FromPrefix(14*i+j, 1, 1, 1))
			}
			tx.Add(x)
		}
	})
	return m, rng
}

// TestFlatMatchesPointer is the package-level differential: on a
// predicate set hitting all three lowering tiers, the flat descent must
// return the identical leaf to the pointer descent for random packets —
// single-packet and batched — including after live updates republish and
// recompile the flat form.
func TestFlatMatchesPointer(t *testing.T) {
	m, rng := flatTestManager(t, 11)
	probe := func(label string) {
		t.Helper()
		s := m.Snapshot()
		f := s.Flat()
		if f == nil {
			t.Fatalf("%s: published snapshot has no flat form", label)
		}
		st := f.Stats()
		if st.MaskNodes == 0 || st.TableNodes == 0 || st.CubeNodes == 0 || st.FallbackNodes == 0 {
			t.Fatalf("%s: lowering mix not exercised: %+v", label, st)
		}
		if st.MaskNodes+st.TableNodes+st.CubeNodes+st.FallbackNodes != st.Nodes {
			t.Fatalf("%s: node kinds do not sum: %+v", label, st)
		}
		pkts := make([][]byte, 257)
		for i := range pkts {
			// Alternate exact-length and overlong packets: the layout is 4
			// bytes, so the tail of an 8-byte packet is dead space both
			// engines must ignore — and the 8-byte form drives the mask
			// nodes' one-load word fast path instead of testSlow.
			pkts[i] = make([]byte, 4+4*(i&1))
			rng.Read(pkts[i])
			want, _ := s.ClassifyPointer(pkts[i])
			if got := f.Classify(pkts[i]); got != want {
				t.Fatalf("%s: pkt %x: flat atom %d, pointer atom %d",
					label, pkts[i], got.AtomID, want.AtomID)
			}
		}
		outF := make([]*Node, len(pkts))
		outP := make([]*Node, len(pkts))
		s.ClassifyBatchWith(&BatchScratch{}, pkts, outF)
		s.ClassifyBatchPointerWith(&BatchScratch{}, pkts, outP)
		for i := range pkts {
			if outF[i] != outP[i] {
				t.Fatalf("%s: batch pkt %d: flat atom %d, pointer atom %d",
					label, i, outF[i].AtomID, outP[i].AtomID)
			}
		}
	}
	probe("initial")
	for round := 0; round < 3; round++ {
		addRandomPredicate(m, rng)
		probe("after update")
	}
	m.Reconstruct(false)
	probe("after reconstruct")
}

// TestFlatLayoutInvariants checks the structural properties the compiler
// guarantees: every child index is in bounds, internal children strictly
// follow their parent in the array (so the descent can never cycle), the
// whole array is reachable from the root with each node and leaf visited
// exactly once, and the leaves enumerate in Tree.Leaves order.
func TestFlatLayoutInvariants(t *testing.T) {
	m, _ := flatTestManager(t, 12)
	s := m.Snapshot()
	f := s.Flat()

	nodeSeen := make([]int, len(f.nodes))
	leafSeen := make([]int, len(f.leaves))
	var walk func(i int32)
	walk = func(i int32) {
		if i < 0 {
			li := int(^i)
			if li >= len(f.leaves) {
				t.Fatalf("leaf index %d out of bounds (%d leaves)", li, len(f.leaves))
			}
			leafSeen[li]++
			return
		}
		if int(i) >= len(f.nodes) {
			t.Fatalf("node index %d out of bounds (%d nodes)", i, len(f.nodes))
		}
		nodeSeen[i]++
		for _, k := range f.nodes[i].kids {
			if k >= 0 && k <= i {
				t.Fatalf("node %d has non-descending internal child %d", i, k)
			}
			walk(k)
		}
	}
	walk(f.root)
	for i, n := range nodeSeen {
		if n != 1 {
			t.Fatalf("flat node %d visited %d times", i, n)
		}
	}
	for i, n := range leafSeen {
		if n != 1 {
			t.Fatalf("flat leaf %d referenced %d times", i, n)
		}
	}
	var want []*Node
	s.Tree().Leaves(func(n *Node) { want = append(want, n) })
	if len(want) != len(f.leaves) {
		t.Fatalf("flat has %d leaves, tree has %d", len(f.leaves), len(want))
	}
	for i := range want {
		if f.leaves[i] != want[i] {
			t.Fatalf("flat leaf %d is not Tree.Leaves entry %d", i, i)
		}
	}
}

// TestFlatLoweringExhaustive enumerates every assignment of a small
// header space and requires each lowering — mask, table, and the plans'
// kind selection itself — to agree bit-for-bit with frozen-view BDD
// evaluation. Predicates are built to land deterministically in each
// tier; every plan is then evaluated through a one-node Flat against all
// 2^16 packets.
func TestFlatLoweringExhaustive(t *testing.T) {
	d := bdd.New(16)
	type tc struct {
		name string
		ref  bdd.Ref
		kind uint8
	}
	short := func(v uint64, l int) bdd.Ref { return d.FromPrefix(0, v<<8, l, 16) }
	// xorWide is the parity of the top 14 header bits: support 14 (> the
	// table cap) and 2^13 satisfying paths (> the cube cap) — nothing but
	// the frozen view can evaluate it.
	xorWide := func(d *bdd.DD) bdd.Ref {
		x := d.FromPrefix(0, 1, 1, 1)
		for j := 1; j < 14; j++ {
			x = d.Xor(x, d.FromPrefix(j, 1, 1, 1))
		}
		return x
	}
	cases := []tc{
		{"minterm-short", d.FromPrefix(0, 0xA500, 5, 16), flatMask},
		{"minterm-full", d.FromPrefix(0, 0x1234, 16, 16), flatMask},
		{"minterm-offset", d.FromPrefix(6, 0x2A0, 7, 10), flatMask},
		{"union-table", d.Or(short(0x40, 3), short(0x90, 5)), flatTable},
		{"union-table-12bit", d.Or(d.FromPrefix(0, 0x0120, 12, 16), d.FromPrefix(0, 0xF300, 9, 16)), flatTable},
		{"xor-table", d.Xor(short(0xC0, 2), short(0x30, 4)), flatTable},
		{"union-cubes", d.Or(d.FromPrefix(0, 0x4321, 16, 16), d.FromPrefix(0, 0x8765, 16, 16)), flatCubes},
		{"acl-cubes", d.Or(d.Or(d.FromPrefix(0, 0xAB00, 13, 16), d.FromPrefix(0, 0x1100, 14, 16)), d.FromPrefix(0, 0xF0F0, 16, 16)), flatCubes},
		{"xor-wide-fallback", xorWide(d), flatBDD},
	}
	for _, c := range cases {
		d.Retain(c.ref)
	}
	v := d.Freeze()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var words int
			p := lowerPred(v, c.ref, &words)
			if p.kind != c.kind {
				t.Fatalf("lowered to kind %d, want %d", p.kind, c.kind)
			}
			// A one-node Flat whose children are two distinct leaves turns
			// the plan into a directly testable boolean function.
			tleaf, fleaf := &Node{Pred: -1}, &Node{Pred: -1}
			f := &Flat{
				leaves: []*Node{tleaf, fleaf},
				bits:   p.bits,
				table:  p.table,
				cubes:  p.cubes,
				view:   v,
			}
			f.nodes = []flatNode{{
				kids: [2]int32{^int32(1), ^int32(0)},
				want: binary.LittleEndian.Uint64(p.want[:]),
				mask: binary.LittleEndian.Uint64(p.mask[:]),
				pred: c.ref,
				kind: p.kind,
				n:    p.nb,
				off:  p.base,
			}}
			if p.kind == flatTable {
				f.nodes[0].off = 0 // bits arena offset
				f.nodes[0].aux = 0
			}
			pkt := make([]byte, 2)
			for a := 0; a < 1<<16; a++ {
				pkt[0], pkt[1] = byte(a>>8), byte(a)
				want := v.EvalBits(c.ref, pkt)
				if got := f.Classify(pkt) == tleaf; got != want {
					t.Fatalf("assignment %04x: lowered eval %v, view eval %v", a, got, want)
				}
			}
		})
	}
}

// TestFlatMintermPlanRejects pins the minterm recognizer's negative
// space: non-minterms and minterms spanning more than 8 probed bytes must
// decline so the wider tiers take over.
func TestFlatMintermPlanRejects(t *testing.T) {
	d := bdd.New(96)
	union := d.Or(d.FromPrefix(0, 0x50000000, 3, 32), d.FromPrefix(0, 0x90000000, 4, 32))
	wide := d.And(d.FromPrefix(0, 1, 2, 8), d.FromPrefix(88, 1, 2, 8)) // bytes 0 and 11
	d.Retain(union)
	d.Retain(wide)
	v := d.Freeze()
	if p := mintermPlan(v, union); p != nil {
		t.Fatal("union of prefixes recognized as a minterm")
	}
	if p := mintermPlan(v, wide); p != nil {
		t.Fatal("11-byte-span minterm accepted into an 8-byte mask window")
	}
	// The wide conjunction is still a 4-bit function: the table tier must
	// take it, and agree with the view everywhere it probes.
	var words int
	p := lowerPred(v, wide, &words)
	if p.kind != flatTable {
		t.Fatalf("wide-span minterm lowered to kind %d, want table", p.kind)
	}
}

// TestSetFlatCompile checks the escape hatch: turning flat compilation
// off republishes a pointer-only snapshot that still classifies
// identically, and turning it back on restores the compiled form.
func TestSetFlatCompile(t *testing.T) {
	m, rng := flatTestManager(t, 13)
	if m.Snapshot().Flat() == nil {
		t.Fatal("flat compilation should be on by default")
	}
	ref := m.Snapshot()
	m.SetFlatCompile(false)
	s := m.Snapshot()
	if s.Flat() != nil {
		t.Fatal("SetFlatCompile(false) still published a flat form")
	}
	pkt := make([]byte, 4)
	for i := 0; i < 64; i++ {
		rng.Read(pkt)
		want, _ := ref.ClassifyPointer(pkt)
		got, _ := s.Classify(pkt)
		if got.AtomID != want.AtomID {
			t.Fatalf("pointer-only snapshot diverged on %x", pkt)
		}
	}
	m.SetFlatCompile(true)
	if m.Snapshot().Flat() == nil {
		t.Fatal("SetFlatCompile(true) did not recompile")
	}
}

// TestFlatPlannerLifecycle checks the cross-publish plan cache: plans
// accumulate over updates within one DD lineage and the planner is
// discarded at the Reconstruct swap (stale refs from the retired DD must
// never leak into the new lineage's compile).
func TestFlatPlannerLifecycle(t *testing.T) {
	m, rng := flatTestManager(t, 14)
	m.mu.RLock()
	pl, d := m.flatPlans, m.d
	m.mu.RUnlock()
	if pl == nil || pl.d != d {
		t.Fatal("planner not bound to the live DD")
	}
	_ = rng
	var ref bdd.Ref
	m.AddPredicate(func(d *bdd.DD) bdd.Ref {
		ref = d.FromPrefix(0, 0xDEADBEEF, 31, 32)
		return ref
	})
	m.mu.RLock()
	same := m.flatPlans
	_, cached := pl.plans[ref]
	m.mu.RUnlock()
	if same != pl {
		t.Fatal("update discarded the planner despite an unchanged DD lineage")
	}
	if !cached {
		t.Fatal("publish after the update did not cache a plan for the new predicate")
	}
	m.Reconstruct(false)
	m.mu.RLock()
	fresh, newD := m.flatPlans, m.d
	m.mu.RUnlock()
	if fresh == pl {
		t.Fatal("Reconstruct kept a planner keyed to the retired DD")
	}
	if fresh == nil || fresh.d != newD {
		t.Fatal("post-swap planner not bound to the new DD")
	}
}
