package aptree

import (
	"math/rand"
	"testing"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// freshRefinement builds a tree from scratch over the given live predicate
// set and returns its leaf count — the size of the full refinement.
func freshRefinement(d *bdd.DD, preds []bdd.Ref, live []int32) int {
	liveRefs := make([]bdd.Ref, 0, len(live))
	ids := make([]int, 0, len(live))
	for _, id := range live {
		liveRefs = append(liveRefs, preds[id])
		ids = append(ids, int(id))
	}
	atoms := predicate.ComputeMapped(d, liveRefs, ids, len(preds))
	return atoms.N()
}

func TestRemovePredicateMergesToFullRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 12, 16, rng)
	in := buildInput(d, preds, rng)
	tree := Build(in, MethodOAPT)

	live := append([]int32(nil), in.Live...)
	for len(live) > 0 {
		k := rng.Intn(len(live))
		victim := live[k]
		live = append(live[:k], live[k+1:]...)
		tree = tree.RemovePredicate(victim)
		if err := tree.Validate(live); err != nil {
			t.Fatalf("after removing %d: %v", victim, err)
		}
		if want := freshRefinement(d, preds, live); tree.NumLeaves() != want {
			t.Fatalf("after removing %d: %d leaves, full refinement has %d",
				victim, tree.NumLeaves(), want)
		}
		checkClassification(t, tree, d, preds, live, 2, rng, 50)
	}
	if tree.NumLeaves() != 1 {
		t.Fatalf("empty predicate set must leave the single atom True, got %d leaves", tree.NumLeaves())
	}
}

func TestRemovePredicateIsPersistent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 8, 16, rng)
	in := buildInput(d, preds, rng)
	old := Build(in, MethodQuick)
	oldLeaves := old.NumLeaves()

	nt := old.RemovePredicate(3)
	rest := make([]int32, 0, len(in.Live)-1)
	for _, id := range in.Live {
		if id != 3 {
			rest = append(rest, id)
		}
	}
	if err := nt.Validate(rest); err != nil {
		t.Fatal(err)
	}
	// The old version must be untouched: same leaf count, still valid for
	// the full predicate set, still routing on predicate 3.
	if old.NumLeaves() != oldLeaves {
		t.Fatal("RemovePredicate mutated the receiver's leaf count")
	}
	if err := old.Validate(in.Live); err != nil {
		t.Fatalf("receiver corrupted: %v", err)
	}
	if old.Pred(3) == bdd.False || nt.Pred(3) != bdd.False {
		t.Fatal("predicate slot handling wrong across versions")
	}
	checkClassification(t, old, d, preds, in.Live, 2, rng, 100)
	checkClassification(t, nt, d, preds, rest, 2, rng, 100)
}

func TestRemovePredicateAbsentIDIsNoop(t *testing.T) {
	d := bdd.New(8)
	in := Input{D: d, Atoms: predicate.Compute(d, nil)}
	tree := Build(in, MethodOrder)
	// Never placed (out of range) and placed-as-False (an all-deny ACL
	// registers bdd.False, which Build never routes on) both share the
	// receiver: there is no structural trace of the ID to remove.
	if nt := tree.RemovePredicate(0); nt != tree {
		t.Fatal("removing an absent predicate must share the receiver")
	}
}

func TestApplyDeltaBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := bdd.New(16)
	preds := randomPrefixPreds(d, 10, 16, rng)
	in := buildInput(d, preds, rng)
	tree := Build(in, MethodOAPT)
	live := append([]int32(nil), in.Live...)

	allPreds := append([]bdd.Ref(nil), preds...)
	for round := 0; round < 10; round++ {
		// Remove up to two random live predicates, add up to two fresh ones,
		// in one batch.
		var removals []int32
		for k := 0; k < 2 && len(live) > 1; k++ {
			i := rng.Intn(len(live))
			removals = append(removals, live[i])
			live = append(live[:i], live[i+1:]...)
		}
		var adds []PredAdd
		for k := 0; k < 1+rng.Intn(2); k++ {
			p := d.Retain(d.FromPrefix(0, uint64(rng.Uint32()>>16), 1+rng.Intn(8), 16))
			id := int32(len(allPreds))
			allPreds = append(allPreds, p)
			live = append(live, id)
			adds = append(adds, PredAdd{ID: id, P: p})
		}
		var st DeltaStats
		tree, st = tree.ApplyDelta(removals, adds)
		if len(removals) > 0 && st.Merges == 0 && st.TouchedLeaves == 0 && st.Splits == 0 {
			// Possible only if the removed predicates never refined anything;
			// with random prefixes over 16 bits this is overwhelmingly
			// unlikely but not an error.
			t.Logf("round %d: delta batch did no structural work", round)
		}
		if err := tree.Validate(live); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if want := freshRefinement(d, allPreds, live); tree.NumLeaves() != want {
			t.Fatalf("round %d: %d leaves, full refinement has %d", round, tree.NumLeaves(), want)
		}
		checkClassification(t, tree, d, allPreds, live, 2, rng, 50)
	}
}

func TestDeltaStatsCounts(t *testing.T) {
	d := bdd.New(8)
	in := Input{D: d, Atoms: predicate.Compute(d, nil)}
	tree := Build(in, MethodOrder) // single leaf True
	p := d.Retain(d.FromPrefix(0, 0x80, 1, 8))

	nt, st := tree.ApplyDelta(nil, []PredAdd{{ID: 0, P: p}})
	if st.Splits != 1 || st.Merges != 0 {
		t.Fatalf("add stats = %+v, want one split", st)
	}
	nt2, st2 := nt.ApplyDelta([]int32{0}, nil)
	if st2.Merges != 1 || st2.Splits != 0 {
		t.Fatalf("remove stats = %+v, want one merge", st2)
	}
	if nt2.NumLeaves() != 1 {
		t.Fatalf("leaves = %d after add+remove, want 1", nt2.NumLeaves())
	}
}

// TestManagerRemoveVersusTombstone checks the Tx.Remove path end to end
// through the manager: removed predicates physically leave the tree (leaf
// count shrinks back), snapshots pinned before the removal keep the old
// refinement, and classification agrees with direct evaluation throughout.
func TestManagerRemoveVersusTombstone(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := NewManager(16, MethodOAPT)
	var ids []int32
	for i := 0; i < 12; i++ {
		ids = append(ids, addRandomPredicate(m, rng))
	}
	before := m.Snapshot()
	beforeLeaves := m.Tree().NumLeaves()

	// Hard-remove half the predicates.
	for _, id := range ids[:6] {
		m.Update(func(tx *Tx) { tx.Remove(id) })
	}
	after := m.Tree().NumLeaves()
	if after >= beforeLeaves {
		t.Fatalf("leaf count %d did not shrink from %d after six removals", after, beforeLeaves)
	}
	// The pinned snapshot keeps the old epoch's refinement.
	if got := before.Tree().NumLeaves(); got != beforeLeaves {
		t.Fatalf("pinned snapshot leaf count changed: %d != %d", got, beforeLeaves)
	}
	// Live classification must match the remaining predicate set.
	d := m.DD()
	tree := m.Tree()
	for i := 0; i < 200; i++ {
		pkt := make([]byte, 2)
		rng.Read(pkt)
		leaf := tree.Classify(pkt)
		for _, id := range ids[6:] {
			want := d.EvalBits(m.Ref(id), pkt)
			if got := leaf.Member.Get(int(id)); got != want {
				t.Fatalf("membership bit %d = %v, eval = %v", id, got, want)
			}
		}
		// Removed predicates must read as clear.
		for _, id := range ids[:6] {
			if leaf.Member.Get(int(id)) {
				t.Fatalf("removed predicate %d still has membership bits set", id)
			}
		}
	}
	// The tree no longer routes on any removed predicate.
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		for _, id := range ids[:6] {
			if n.Pred == id {
				t.Fatalf("tree still routes on removed predicate %d", id)
			}
		}
		walk(n.T)
		walk(n.F)
	}
	walk(m.Tree().Root())
}

// TestReconstructReplaysHardRemovals interleaves Tx.Remove with running
// reconstructions. Removals that land between a rebuild's snapshot and its
// swap are journaled as hard deletions and replayed onto the fresh tree
// (phase 4); whatever the interleaving, the swapped-in tree must never
// route on, or carry membership bits for, a removed predicate, and must
// still classify the remaining set correctly.
func TestReconstructReplaysHardRemovals(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for round := 0; round < 8; round++ {
		m := NewManager(16, MethodQuick)
		var ids []int32
		for i := 0; i < 12; i++ {
			ids = append(ids, addRandomPredicate(m, rng))
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			m.Reconstruct(false)
			m.Reconstruct(true)
		}()
		removed := ids[:4]
		for _, id := range removed {
			m.Update(func(tx *Tx) { tx.Remove(id) })
		}
		added := addRandomPredicate(m, rng)
		<-done
		// One more swap with a quiet journal so the final tree has seen a
		// rebuild after every removal, whichever phase they landed in.
		m.Reconstruct(false)

		tree := m.Tree()
		var walk func(n *Node)
		walk = func(n *Node) {
			if n.IsLeaf() {
				for _, id := range removed {
					if n.Member.Get(int(id)) {
						t.Fatalf("round %d: membership bit of removed predicate %d set", round, id)
					}
				}
				return
			}
			for _, id := range removed {
				if n.Pred == id {
					t.Fatalf("round %d: tree routes on removed predicate %d", round, id)
				}
			}
			walk(n.T)
			walk(n.F)
		}
		walk(tree.Root())
		d := m.DD()
		live := append(append([]int32(nil), ids[4:]...), added)
		for i := 0; i < 100; i++ {
			pkt := make([]byte, 2)
			rng.Read(pkt)
			leaf := tree.Classify(pkt)
			for _, id := range live {
				if got, want := leaf.Member.Get(int(id)), d.EvalBits(m.Ref(id), pkt); got != want {
					t.Fatalf("round %d: membership bit %d = %v, eval = %v", round, id, got, want)
				}
			}
		}
	}
}
