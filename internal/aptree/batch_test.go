package aptree

import (
	"math/rand"
	"strconv"
	"testing"

	"apclassifier/internal/bdd"
)

// batchTree builds a moderately deep tree plus a 4-byte random trace for
// the batch tests, without going through the *testing.B bench helpers.
func batchTree(numPreds int, seed int64) (*Tree, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	d := bdd.New(32)
	preds := make([]bdd.Ref, numPreds)
	for i := range preds {
		preds[i] = d.Retain(d.FromPrefix(0, uint64(rng.Uint32()), 8+rng.Intn(17), 32))
	}
	return Build(buildInput(d, preds, rng), MethodOAPT), rng
}

// TestClassifyBatchMatchesClassify checks that the batched descent agrees
// leaf-for-leaf with the per-packet search, for batches with and without
// duplicate headers, and that the per-atom visit totals come out identical
// to classifying the same packets one by one.
func TestClassifyBatchMatchesClassify(t *testing.T) {
	tree, rng := batchTree(48, 7)

	for _, n := range []int{0, 1, 2, 7, 64, 301} {
		pkts := make([][]byte, n)
		for i := range pkts {
			if i > 0 && rng.Intn(3) == 0 {
				pkts[i] = pkts[rng.Intn(i)] // force duplicate headers
			} else {
				pkts[i] = make([]byte, 4)
				rng.Read(pkts[i])
			}
		}

		// Single-packet leaves and visit deltas, on a visit-quiet pass
		// first so the expectations don't disturb the counters under test.
		tree.CountVisits = false
		want := make([]*Node, n)
		wantVisits := map[int32]uint64{}
		for i, p := range pkts {
			want[i] = tree.Classify(p)
			wantVisits[want[i].AtomID]++
		}
		tree.CountVisits = true

		before := map[int32]uint64{}
		tree.Leaves(func(l *Node) { before[l.AtomID] = tree.visits.count(l.AtomID) })

		out := make([]*Node, n)
		sc := &BatchScratch{}
		tree.ClassifyBatchWith(sc, pkts, out)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("n=%d packet %d: batch leaf atom %d, single leaf atom %d",
					n, i, out[i].AtomID, want[i].AtomID)
			}
		}
		tree.Leaves(func(l *Node) {
			delta := tree.visits.count(l.AtomID) - before[l.AtomID]
			if delta != wantVisits[l.AtomID] {
				t.Fatalf("n=%d atom %d: batch visit delta %d, single-path total %d",
					n, l.AtomID, delta, wantVisits[l.AtomID])
			}
		})

		// Reusing the same scratch for a second batch must still agree.
		tree.ClassifyBatchWith(sc, pkts, out)
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("n=%d packet %d drifted on scratch reuse", n, i)
			}
		}
	}
}

// TestClassifyBatchSnapshot checks the epoch-pinned batch entry point
// against the snapshot's own per-packet search, including on a snapshot
// retained across a reconstruction swap.
func TestClassifyBatchSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewManager(16, MethodOAPT)
	for i := 0; i < 40; i++ {
		addRandomPredicate(m, rng)
	}
	pkts := make([][]byte, 128)
	for i := range pkts {
		pkts[i] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
	}
	out := make([]*Node, len(pkts))

	for round := 0; round < 2; round++ {
		s := m.Snapshot()
		s.ClassifyBatch(pkts, out)
		for i, p := range pkts {
			want, _ := s.Classify(p)
			if out[i] != want {
				t.Fatalf("round %d packet %d: batch atom %d, single atom %d",
					round, i, out[i].AtomID, want.AtomID)
			}
		}
		// An old snapshot keeps batch-classifying identically after the
		// live tree moves on.
		addRandomPredicate(m, rng)
		m.Reconstruct(false)
		s.ClassifyBatch(pkts, out)
		for i, p := range pkts {
			want, _ := s.Classify(p)
			if out[i] != want {
				t.Fatalf("round %d packet %d: retained-epoch batch drifted", round, i)
			}
		}
	}
}

func TestClassifyBatchShortOutputPanics(t *testing.T) {
	tree, rng := batchTree(16, 9)
	pkts := make([][]byte, 4)
	for i := range pkts {
		pkts[i] = make([]byte, 4)
		rng.Read(pkts[i])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short output slice did not panic")
		}
	}()
	tree.ClassifyBatch(pkts, make([]*Node, 2))
}

// BenchmarkBatchClassify measures the batched stage-1 search at several
// batch sizes against the per-packet loop, on a uniform trace (no
// duplicate collapse: the group-by-branch descent alone) — part of
// bench-smoke.
func BenchmarkBatchClassify(b *testing.B) {
	m, trace := benchManager(b)
	s := m.Snapshot()
	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Classify(trace[i%len(trace)])
		}
	})
	for _, size := range []int{16, 64, 256} {
		b.Run("batch"+strconv.Itoa(size), func(b *testing.B) {
			sc := &BatchScratch{}
			out := make([]*Node, size)
			for i := 0; i < b.N; i += size {
				at := i % len(trace)
				end := at + size
				if end > len(trace) {
					end = len(trace)
				}
				s.ClassifyBatchWith(sc, trace[at:end], out)
			}
		})
	}
}
