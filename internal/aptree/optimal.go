package aptree

import (
	"fmt"
	"strconv"
	"strings"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

// MaxOptimalPreds bounds BuildOptimal's input size; the search memoizes
// over subsets of predicates and atom sets, which explodes beyond this.
const MaxOptimalPreds = 24

// BuildOptimal constructs a minimum-total-leaf-depth AP Tree by exhaustive
// memoized evaluation of the recursion F(Q,S) of §V-C, equation (1). The
// paper dismisses this computation as O(2^k·k!) and proposes the OAPT
// heuristic instead; this implementation exists to measure the heuristic's
// optimality gap on small inputs (see the optimality-gap experiment) and
// as a test oracle. It panics when more than MaxOptimalPreds predicates
// are live.
func BuildOptimal(in Input) *Tree {
	if len(in.Live) > MaxOptimalPreds {
		panic(fmt.Sprintf("aptree: BuildOptimal limited to %d predicates, got %d", MaxOptimalPreds, len(in.Live)))
	}
	t := &Tree{D: in.D, preds: append([]bdd.Ref(nil), in.Preds...), CountVisits: true}
	b := &builder{in: in, t: t, rsets: make([]predicate.AtomSet, len(in.Preds))}
	posOf := make(map[int32]uint, len(in.Live))
	for i, id := range in.Live {
		b.rsets[id] = in.Atoms.RSet(int(id))
		posOf[id] = uint(i)
	}
	all := predicate.AtomRange(0, int32(in.Atoms.N()))
	o := &optimizer{b: b, posOf: posOf, memo: map[string]optEntry{}}
	allMask := uint32(1)<<uint(len(in.Live)) - 1
	t.root = o.build(allMask, in.Live, all, 0)
	t.nextAtom = int32(in.Atoms.N())
	t.visits = newVisitCounters(int(t.nextAtom))
	return t
}

type optEntry struct {
	cost int
	pred int32 // argmin root predicate; -1 for leaves
}

type optimizer struct {
	b     *builder
	posOf map[int32]uint
	memo  map[string]optEntry
}

func (o *optimizer) key(qmask uint32, s predicate.AtomSet) string {
	var sb strings.Builder
	sb.WriteString(strconv.FormatUint(uint64(qmask), 16))
	s.EachRun(func(lo, hi int32) bool {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(int64(lo), 36))
		sb.WriteByte('-')
		sb.WriteString(strconv.FormatInt(int64(hi), 36))
		return true
	})
	return sb.String()
}

// cost computes F(Q,S) with memoization, recording the argmin predicate.
func (o *optimizer) cost(qmask uint32, q []int32, s predicate.AtomSet) int {
	if s.Len() == 1 {
		return 0
	}
	k := o.key(qmask, s)
	if e, ok := o.memo[k]; ok {
		return e.cost
	}
	best := optEntry{cost: -1, pred: -1}
	for _, p := range q {
		if qmask&(1<<o.posOf[p]) == 0 {
			continue
		}
		st := s.Intersect(o.b.rset(p))
		if st.Empty() || st.Len() == s.Len() {
			continue
		}
		sf := s.Diff(o.b.rset(p))
		q2 := qmask &^ (1 << o.posOf[p])
		c := o.cost(q2, q, st) + o.cost(q2, q, sf) + s.Len()
		if best.cost < 0 || c < best.cost {
			best = optEntry{cost: c, pred: p}
		}
	}
	if best.cost < 0 {
		panic(fmt.Sprintf("aptree: %d atoms indistinguishable by remaining predicates", s.Len()))
	}
	o.memo[k] = best
	return best.cost
}

// build materializes the optimal tree by replaying the memoized argmins.
func (o *optimizer) build(qmask uint32, q []int32, s predicate.AtomSet, depth int32) *Node {
	if s.Len() == 1 {
		return o.b.leaf(s.Min(), depth)
	}
	o.cost(qmask, q, s) // ensure memo entry
	e := o.memo[o.key(qmask, s)]
	st := s.Intersect(o.b.rset(e.pred))
	sf := s.Diff(o.b.rset(e.pred))
	q2 := qmask &^ (1 << o.posOf[e.pred])
	return &Node{
		Pred:  e.pred,
		Depth: depth,
		T:     o.build(q2, q, st, depth+1),
		F:     o.build(q2, q, sf, depth+1),
	}
}
