package aptree

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"apclassifier/internal/bdd"
	"apclassifier/internal/predicate"
)

func TestAddPredicateKeepsClassificationCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := bdd.New(16)
	initial := randomPrefixPreds(d, 10, 16, rng)
	in := buildInput(d, initial, rng)
	tree := Build(in, MethodOAPT)

	preds := append([]bdd.Ref(nil), initial...)
	live := append([]int32(nil), in.Live...)
	for round := 0; round < 15; round++ {
		p := d.Retain(d.FromPrefix(0, uint64(rng.Uint32()>>16), 1+rng.Intn(8), 16))
		id := int32(len(preds))
		preds = append(preds, p)
		live = append(live, id)
		tree = tree.AddPredicate(id, p)
		checkClassification(t, tree, d, preds, live, 2, rng, 100)
	}
	// Structural sanity after many updates.
	if err := tree.Validate(live); err != nil {
		t.Fatal(err)
	}
}

func TestAddPredicateLeafAccounting(t *testing.T) {
	d := bdd.New(8)
	in := Input{D: d, Atoms: predicate.Compute(d, nil)}
	tree := Build(in, MethodOrder) // single leaf
	p := d.Retain(d.FromPrefix(0, 0x80, 1, 8))
	tree = tree.AddPredicate(0, p)
	if tree.NumLeaves() != 2 {
		t.Fatalf("leaves = %d, want 2 after first split", tree.NumLeaves())
	}
	// A predicate equal to an existing atom must not split anything.
	tree = tree.AddPredicate(1, p)
	if tree.NumLeaves() != 2 {
		t.Fatalf("leaves = %d, duplicate predicate must not split", tree.NumLeaves())
	}
	// Its membership bit must still be correct on both leaves.
	pkt := []byte{0xFF}
	leaf := tree.Classify(pkt)
	if !leaf.Member.Get(0) || !leaf.Member.Get(1) {
		t.Fatal("membership bits for duplicate predicate missing")
	}
	pkt = []byte{0x00}
	leaf = tree.Classify(pkt)
	if leaf.Member.Get(0) || leaf.Member.Get(1) {
		t.Fatal("membership bits set on non-matching leaf")
	}
}

func TestAddPredicateRejectsExistingID(t *testing.T) {
	d := bdd.New(8)
	in := Input{D: d, Atoms: predicate.Compute(d, nil)}
	tree := Build(in, MethodOrder)
	p := d.Retain(d.FromPrefix(0, 0x80, 1, 8))
	tree = tree.AddPredicate(0, p)
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a predicate ID must panic")
		}
	}()
	tree = tree.AddPredicate(0, p)
}

func TestRegistry(t *testing.T) {
	d := bdd.New(8)
	r := NewRegistry()
	a := r.Add(d.Var(0))
	b := r.Add(d.Var(1))
	c := r.Add(d.Var(2))
	if a != 0 || b != 1 || c != 2 {
		t.Fatalf("ids = %d,%d,%d", a, b, c)
	}
	if r.NumLive() != 3 || r.NumIDs() != 3 {
		t.Fatal("counts wrong")
	}
	r.Delete(b)
	if r.IsLive(b) || !r.IsLive(a) {
		t.Fatal("tombstone wrong")
	}
	if r.NumLive() != 2 {
		t.Fatal("live count wrong after delete")
	}
	ids := r.LiveIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Fatalf("LiveIDs = %v", ids)
	}
	cl := r.Clone()
	cl.Delete(a)
	if !r.IsLive(a) {
		t.Fatal("Clone must not alias")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double delete must panic")
		}
	}()
	r.Delete(b)
}

func addRandomPredicate(m *Manager, rng *rand.Rand) int32 {
	v := uint64(rng.Uint32() >> 16)
	l := 1 + rng.Intn(8)
	return m.AddPredicate(func(d *bdd.DD) bdd.Ref {
		return d.FromPrefix(0, v, l, 16)
	})
}

func TestManagerBasicFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewManager(16, MethodOAPT)
	var ids []int32
	for i := 0; i < 20; i++ {
		ids = append(ids, addRandomPredicate(m, rng))
	}
	if m.NumLive() != 20 {
		t.Fatalf("live = %d", m.NumLive())
	}
	// Classification correctness against direct evaluation.
	checkManager := func() {
		d := m.DD()
		for i := 0; i < 200; i++ {
			pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			leaf, _ := m.Classify(pkt)
			m.mu.RLock()
			for _, id := range m.reg.LiveIDs() {
				want := d.EvalBits(m.reg.Ref(id), pkt)
				if leaf.Member.Get(int(id)) != want {
					m.mu.RUnlock()
					t.Fatalf("membership bit %d wrong", id)
				}
			}
			m.mu.RUnlock()
		}
	}
	checkManager()

	m.DeletePredicate(ids[3])
	m.DeletePredicate(ids[7])
	if m.NumLive() != 18 {
		t.Fatalf("live = %d after deletes", m.NumLive())
	}
	v0 := m.Version()
	m.Reconstruct(false)
	if m.Version() != v0+1 {
		t.Fatal("version must bump at swap")
	}
	checkManager()
	// After reconstruction the tombstoned predicates are physically gone:
	// the new tree was built from live predicates only.
	if got := m.Tree().NumLeaves(); got < 2 {
		t.Fatalf("suspicious leaf count %d", got)
	}
	if err := m.Tree().Validate(m.LiveIDs()); err != nil {
		t.Fatal(err)
	}
}

func TestManagerReconstructWithConcurrentTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := NewManager(16, MethodOAPT)
	for i := 0; i < 30; i++ {
		addRandomPredicate(m, rng)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Query workers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pkt := []byte{byte(r.Intn(256)), byte(r.Intn(256))}
				leaf, _ := m.Classify(pkt)
				if leaf == nil || !leaf.IsLeaf() {
					t.Error("bad classification result")
					return
				}
			}
		}(int64(w))
	}
	// Update worker.
	wg.Add(1)
	var mu sync.Mutex
	var added []int32
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := addRandomPredicate(m, r)
			mu.Lock()
			added = append(added, id)
			mu.Unlock()
			if i%5 == 4 {
				mu.Lock()
				victim := added[r.Intn(len(added))]
				added = append(added[:0], added...)
				mu.Unlock()
				if m.IsLive(victim) {
					m.DeletePredicate(victim)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	// Several reconstructions while traffic flows.
	for i := 0; i < 5; i++ {
		m.Reconstruct(i%2 == 0)
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Post-condition: classification still agrees with direct evaluation.
	d := m.DD()
	for i := 0; i < 300; i++ {
		pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		leaf, _ := m.Classify(pkt)
		m.mu.RLock()
		for _, id := range m.reg.LiveIDs() {
			want := d.EvalBits(m.reg.Ref(id), pkt)
			if leaf.Member.Get(int(id)) != want {
				m.mu.RUnlock()
				t.Fatalf("membership bit %d wrong after concurrent churn", id)
			}
		}
		m.mu.RUnlock()
	}
}

func TestManagerWeightedReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := NewManager(16, MethodOAPT)
	for i := 0; i < 25; i++ {
		addRandomPredicate(m, rng)
	}
	m.Reconstruct(false)

	// Hammer a single atom, then rebuild weighted: its depth must not grow.
	pkt := []byte{0xAB, 0xCD}
	leafBefore, _ := m.Classify(pkt)
	for i := 0; i < 10000; i++ {
		m.Classify(pkt)
	}
	m.Reconstruct(true)
	leafAfter, _ := m.Classify(pkt)
	if leafAfter.Depth > leafBefore.Depth {
		t.Fatalf("hot atom got deeper after weighted rebuild: %d -> %d", leafBefore.Depth, leafAfter.Depth)
	}
	if err := m.Tree().Validate(m.LiveIDs()); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatesSinceSwapAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m := NewManager(16, MethodOAPT)
	if m.UpdatesSinceSwap() != 0 {
		t.Fatal("fresh manager has no updates")
	}
	ids := make([]int32, 0)
	for i := 0; i < 5; i++ {
		ids = append(ids, addRandomPredicate(m, rng))
	}
	m.DeletePredicate(ids[0])
	if got := m.UpdatesSinceSwap(); got != 6 {
		t.Fatalf("UpdatesSinceSwap = %d, want 6", got)
	}
	m.Reconstruct(false)
	if got := m.UpdatesSinceSwap(); got != 0 {
		t.Fatalf("UpdatesSinceSwap = %d after swap, want 0", got)
	}
}

func TestAutoReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m := NewManager(16, MethodOAPT)
	for i := 0; i < 10; i++ {
		addRandomPredicate(m, rng)
	}
	m.Reconstruct(false) // reset the update counter before arming
	v0 := m.Version()
	stop := m.AutoReconstruct(5, 2*time.Millisecond, false)
	defer stop()
	// Below threshold: no rebuild.
	for i := 0; i < 3; i++ {
		addRandomPredicate(m, rng)
	}
	time.Sleep(15 * time.Millisecond)
	if m.Version() != v0 {
		t.Fatal("rebuild fired below threshold")
	}
	// Cross the threshold: a rebuild must fire.
	for i := 0; i < 4; i++ {
		addRandomPredicate(m, rng)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Version() == v0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if m.Version() == v0 {
		t.Fatal("auto-reconstruction did not fire above threshold")
	}
	// Correctness preserved.
	d := m.DD()
	for i := 0; i < 100; i++ {
		pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		leaf, _ := m.Classify(pkt)
		for _, id := range m.LiveIDs() {
			if leaf.Member.Get(int(id)) != d.EvalBits(m.Ref(id), pkt) {
				t.Fatal("classification wrong after auto-reconstruct")
			}
		}
	}
}

func TestManagerEmptyReconstruct(t *testing.T) {
	m := NewManager(8, MethodOAPT)
	m.Reconstruct(false)
	leaf, _ := m.Classify([]byte{0x12})
	if leaf.AtomID != 0 {
		t.Fatal("empty manager must classify everything to atom 0")
	}
}

func TestManagerJournalReplayOrdering(t *testing.T) {
	// Adds issued during a rebuild must be visible in the swapped tree.
	rng := rand.New(rand.NewSource(24))
	m := NewManager(16, MethodOAPT)
	for i := 0; i < 10; i++ {
		addRandomPredicate(m, rng)
	}
	done := make(chan struct{})
	go func() {
		m.Reconstruct(false)
		close(done)
	}()
	var lateIDs []int32
	for i := 0; i < 10; i++ {
		lateIDs = append(lateIDs, addRandomPredicate(m, rng))
	}
	<-done
	d := m.DD()
	for i := 0; i < 200; i++ {
		pkt := []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		leaf, _ := m.Classify(pkt)
		m.mu.RLock()
		for _, id := range lateIDs {
			if m.reg.IsLive(id) {
				want := d.EvalBits(m.reg.Ref(id), pkt)
				if leaf.Member.Get(int(id)) != want {
					m.mu.RUnlock()
					t.Fatalf("late predicate %d not correctly represented after swap", id)
				}
			}
		}
		m.mu.RUnlock()
	}
}
