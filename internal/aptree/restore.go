package aptree

import (
	"fmt"

	"apclassifier/internal/bdd"
)

// This file is the warm-restart half of the package: constructors that
// rebuild a Tree, Registry and Manager from decoded checkpoint state
// (see internal/checkpoint) instead of from predicates and atoms. The
// checkpoint decoder hands over raw parts — a node structure whose BDD
// refs already live in a freshly loaded DD — and these constructors
// re-establish every invariant the normal build paths establish:
// depths, leaf counts, visit counters, leaf retentions, and the
// published epoch snapshot.

// RestoreRegistry rebuilds a predicate registry from an ID-indexed ref
// slice and liveness flags, as decoded from a checkpoint. Slots with
// live[id] false are tombstones: their refs may still route in a
// restored tree, exactly as they did in the checkpointed epoch.
func RestoreRegistry(refs []bdd.Ref, live []bool) (*Registry, error) {
	if len(refs) != len(live) {
		return nil, fmt.Errorf("aptree: registry restore: %d refs but %d liveness flags", len(refs), len(live))
	}
	r := &Registry{
		refs: append([]bdd.Ref(nil), refs...),
		live: append([]bool(nil), live...),
	}
	for id, l := range r.live {
		if l {
			if r.refs[id] == bdd.False {
				return nil, fmt.Errorf("aptree: registry restore: live predicate %d has false BDD", id)
			}
			r.n++
		}
	}
	return r, nil
}

// RestoreTree adopts a decoded node structure as an AP Tree over d.
// root's subtree must be fully populated: internal nodes carry Pred and
// both children, leaves carry AtomID, BDD and Member, and every BDD ref
// must already be canonical in d. Depths and the leaf count are
// recomputed (they are derivable, so the checkpoint does not store
// them); leaf atom BDDs are retained exactly as the normal build path
// retains them; visit counters start at zero — query-distribution
// history deliberately does not survive a restart, so the first
// weighted reconstruction after a restore sees only post-restore
// traffic.
//
// The structure is validated as it is walked: predicate IDs must index
// a non-false entry of preds, atom IDs must be unique and below
// nextAtom, and no internal node may be missing a child. A checkpoint
// that decodes but fails these checks is rejected here rather than
// becoming a tree that misclassifies.
func RestoreTree(d *bdd.DD, root *Node, preds []bdd.Ref, nextAtom int32) (*Tree, error) {
	if root == nil {
		return nil, fmt.Errorf("aptree: restore: nil root")
	}
	t := &Tree{
		D:           d,
		preds:       append([]bdd.Ref(nil), preds...),
		nextAtom:    nextAtom,
		CountVisits: true,
	}
	seenAtom := make(map[int32]bool)
	var walk func(n *Node, depth int32) error
	walk = func(n *Node, depth int32) error {
		n.Depth = depth
		if n.IsLeaf() {
			if n.AtomID < 0 || n.AtomID >= nextAtom {
				return fmt.Errorf("aptree: restore: leaf atom ID %d outside [0,%d)", n.AtomID, nextAtom)
			}
			if seenAtom[n.AtomID] {
				return fmt.Errorf("aptree: restore: duplicate leaf atom ID %d", n.AtomID)
			}
			seenAtom[n.AtomID] = true
			if n.BDD == bdd.False {
				return fmt.Errorf("aptree: restore: leaf atom %d has false BDD", n.AtomID)
			}
			d.Retain(n.BDD)
			t.numLeaves++
			return nil
		}
		if int(n.Pred) >= len(t.preds) {
			return fmt.Errorf("aptree: restore: node predicate ID %d outside [0,%d)", n.Pred, len(t.preds))
		}
		if t.preds[n.Pred] == bdd.False {
			return fmt.Errorf("aptree: restore: node routes on absent predicate %d", n.Pred)
		}
		if n.T == nil || n.F == nil {
			return fmt.Errorf("aptree: restore: internal node (predicate %d) missing a child", n.Pred)
		}
		if err := walk(n.T, depth+1); err != nil {
			return err
		}
		return walk(n.F, depth+1)
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	t.root = root
	t.visits = newVisitCounters(int(t.nextAtom))
	t.debugCheckPartition()
	return t, nil
}

// NextAtom reports the tree's atom-ID allocation bound: every leaf's
// AtomID is below it, and it is what RestoreTree must be handed back so
// IDs allocated by post-restore splits never collide with restored ones.
func (t *Tree) NextAtom() int32 { return t.nextAtom }

// NewRestoredManager is NewManagerWith for the warm-restart path: it
// additionally seeds the reconstruction epoch, so version numbers keep
// increasing across a restart instead of resetting — consumers caching
// per-version data (middlebox flow tables, monitoring) never see the
// clock run backwards. The same DD/registry/tree contract as
// NewManagerWith applies.
func NewRestoredManager(d *bdd.DD, reg *Registry, tree *Tree, method Method, version uint64) *Manager {
	m := &Manager{d: d, reg: reg, tree: tree, method: method, version: version}
	// Single-threaded until returned, so publishing without mu is sound.
	m.publishLocked()
	return m
}

// Method reports the construction method reconstructions use. It is
// fixed at construction, so no lock is needed.
func (m *Manager) Method() Method { return m.method }

// PublishNotify returns a channel that receives a coalesced signal after
// every snapshot publication — updates and reconstruction swaps alike.
// The channel has capacity one and publishers never block on it: a
// burst of publishes while the consumer is busy collapses into a single
// pending signal, which is exactly the contract a background
// checkpointer wants (state changed since you last looked; capture
// whenever convenient). All callers share one channel.
func (m *Manager) PublishNotify() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.notify == nil {
		m.notify = make(chan struct{}, 1)
	}
	return m.notify
}
