package apclassifier

import (
	"fmt"

	"apclassifier/internal/aptree"
	"apclassifier/internal/network"
)

// Batched queries. A batch runs the same two stages as a single query but
// amortizes both: stage 1 classifies the whole batch in one group-by-
// branch descent (duplicate headers collapse to one search), and stage 2
// walks each distinct (ingress, atom) pair once — first consulting the
// epoch's behavior cache, then deduplicating within the batch — instead
// of once per packet. The single-packet path is a thin wrapper over the
// same pipeline (behaviorVia), so there is no second code path to keep
// correct; TestBatchMatchesSingle holds the two entry points element-wise
// identical.

// batchKey identifies one traffic class within a batch: packets entering
// the same box with the same atomic predicate share a behavior whenever
// the walk is deterministic.
type batchKey struct {
	ingress int
	atom    int32
}

// BatchBuffer holds the reusable scratch of the batch pipeline: stage-1
// index buffers, the leaf and result slices, a stage-2 Walker, and the
// intra-batch dedup map. Steady-state batches of a stable size allocate
// only for cache-miss walk results. A BatchBuffer is bound to the
// classifier that created it and is not safe for concurrent use; pool one
// per goroutine (the HTTP server keeps a sync.Pool).
type BatchBuffer struct {
	sc     aptree.BatchScratch
	leaves []*aptree.Node
	out    []*network.Behavior
	w      *network.Walker
	seen   map[batchKey]*network.Behavior
}

// NewBatchBuffer returns batch scratch space bound to this classifier.
func (c *Classifier) NewBatchBuffer() *BatchBuffer {
	return &BatchBuffer{
		w:    network.NewWalker(c.Net, c.env),
		seen: make(map[batchKey]*network.Behavior),
	}
}

// ClassifyBatch runs stage 1 for the whole batch against the pinned
// epoch, returning one leaf per packet. The returned slice is owned by
// buf and valid until its next use; pass it straight to
// BehaviorBatchFrom.
func (s *Snapshot) ClassifyBatch(buf *BatchBuffer, pkts [][]byte) []*aptree.Node {
	if cap(buf.leaves) < len(pkts) {
		buf.leaves = make([]*aptree.Node, len(pkts))
	}
	buf.leaves = buf.leaves[:len(pkts)]
	s.s.ClassifyBatchWith(&buf.sc, pkts, buf.leaves)
	return buf.leaves
}

// BehaviorBatchFrom runs stage 2 for a batch whose leaves the caller
// already obtained from ClassifyBatch on this same snapshot (the staged
// form the HTTP server uses to time the stages separately). ingress[i] is
// packet i's entry box. The returned slice is owned by buf and valid
// until its next use; the behaviors themselves are read-only but remain
// valid indefinitely.
func (s *Snapshot) BehaviorBatchFrom(buf *BatchBuffer, ingress []int, pkts [][]byte, leaves []*aptree.Node) []*network.Behavior {
	if len(ingress) != len(pkts) || len(leaves) != len(pkts) {
		panic(fmt.Sprintf("apclassifier: BehaviorBatchFrom length mismatch: %d ingresses, %d packets, %d leaves",
			len(ingress), len(pkts), len(leaves)))
	}
	c := s.c
	bc := c.cacheFor(s.s)
	clear(buf.seen)
	if cap(buf.out) < len(pkts) {
		buf.out = make([]*network.Behavior, 0, len(pkts))
	}
	out := buf.out[:0]
	for i := range pkts {
		key := batchKey{ingress[i], leaves[i].AtomID}
		if b, ok := buf.seen[key]; ok {
			out = append(out, b)
			continue
		}
		b := c.behaviorVia(bc, buf.w, s.s, ingress[i], pkts[i], leaves[i], true)
		if b.Deterministic() {
			// Only deterministic behaviors stand for their whole class;
			// a Type-2/Type-3 walk is recomputed for every packet even
			// inside one batch (§V-E).
			buf.seen[key] = b
		}
		out = append(out, b)
	}
	buf.out = out
	return out
}

// BehaviorBatch answers every (ingress[i], pkts[i]) query against the
// pinned epoch: ClassifyBatch followed by BehaviorBatchFrom. Results are
// element-wise identical to calling Behavior per packet — including
// per-atom visit statistics — but tree descents, cache lookups and
// topology walks are shared across the batch. The returned slice is owned
// by buf and valid until its next use.
func (s *Snapshot) BehaviorBatch(buf *BatchBuffer, ingress []int, pkts [][]byte) []*network.Behavior {
	leaves := s.ClassifyBatch(buf, pkts)
	return s.BehaviorBatchFrom(buf, ingress, pkts, leaves)
}

// BehaviorBatch pins the current epoch and answers the whole batch
// against it; see Snapshot.BehaviorBatch. Like the single-packet path it
// acquires no lock and runs safely concurrent with updates and
// reconstructions — the batch is atomic with respect to epoch swaps.
func (c *Classifier) BehaviorBatch(buf *BatchBuffer, ingress []int, pkts [][]byte) []*network.Behavior {
	return c.Snapshot().BehaviorBatch(buf, ingress, pkts)
}
