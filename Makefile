# Local mirrors of the CI gates (.github/workflows/ci.yml). `make check`
# runs everything CI runs; the narrower targets exist for tight loops.

GO ?= go

# Packages whose concurrency contracts are exercised under the race
# detector (snapshot query path at the facade, Manager two-process
# operation, frozen BDD views, HTTP server, experiment harness workers).
RACE_PKGS := . ./internal/aptree ./internal/bdd ./internal/server ./internal/experiments

# Packages carrying apdebug-tagged sanitizer tests (post-GC BDD audits,
# AP Tree leaf-partition checks).
APDEBUG_PKGS := ./internal/bdd ./internal/aptree

# Benchmarks exercised by bench-smoke: the lock-free snapshot query path,
# serial and parallel, plus the mixed query/update workload. A fixed
# -benchtime keeps the step fast; it is a non-regression smoke (the
# benchmarks must run and the parallel path must stay race-clean), not a
# performance gate — numbers live in EXPERIMENTS.md.
BENCH_SMOKE := ^(BenchmarkManagerClassify|BenchmarkParallelClassify|BenchmarkParallelClassifyWithUpdates)$$

# Coverage floor for the observability layer: metrics and traces are what
# operators debug incidents with, so internal/obs stays near-fully tested.
COVER_PKG   := ./internal/obs
COVER_FLOOR := 90.0
COVER_OUT   := coverage-obs.out

.PHONY: build test vet lint race apdebug bench-smoke cover check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis; see "Static analysis & sanitizers" in
# README.md for the checks and the //lint:ignore suppression syntax.
lint:
	$(GO) run ./cmd/aplint ./...

race:
	$(GO) test -race $(RACE_PKGS)

apdebug:
	$(GO) test -tags apdebug $(APDEBUG_PKGS)

bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_SMOKE)' -benchtime 200x -cpu 1,4 ./internal/aptree

cover:
	$(GO) test -coverprofile=$(COVER_OUT) $(COVER_PKG)
	@total=$$($(GO) tool cover -func=$(COVER_OUT) | awk '/^total:/ { gsub("%","",$$3); print $$3 }'); \
	echo "$(COVER_PKG) coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

check: build vet test lint race apdebug bench-smoke cover
	@echo "all gates passed"
