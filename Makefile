# Local mirrors of the CI gates (.github/workflows/ci.yml). `make check`
# runs everything CI runs; the narrower targets exist for tight loops.

GO ?= go

# Packages whose concurrency contracts are exercised under the race
# detector (Manager two-process operation, HTTP server, experiment
# harness workers).
RACE_PKGS := ./internal/aptree ./internal/server ./internal/experiments

# Packages carrying apdebug-tagged sanitizer tests (post-GC BDD audits,
# AP Tree leaf-partition checks).
APDEBUG_PKGS := ./internal/bdd ./internal/aptree

.PHONY: build test vet lint race apdebug check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis; see "Static analysis & sanitizers" in
# README.md for the checks and the //lint:ignore suppression syntax.
lint:
	$(GO) run ./cmd/aplint ./...

race:
	$(GO) test -race $(RACE_PKGS)

apdebug:
	$(GO) test -tags apdebug $(APDEBUG_PKGS)

check: build vet test lint race apdebug
	@echo "all gates passed"
