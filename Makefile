# Local mirrors of the CI gates (.github/workflows/ci.yml). `make check`
# runs everything CI runs; the narrower targets exist for tight loops.

GO ?= go

# Packages whose concurrency contracts are exercised under the race
# detector (snapshot query path at the facade, Manager two-process
# operation, frozen BDD views, HTTP server, background checkpointer,
# experiment harness workers, pinned verification under rule churn).
RACE_PKGS := . ./internal/aptree ./internal/bdd ./internal/server ./internal/checkpoint ./internal/cluster ./internal/experiments ./internal/lint ./internal/verify

# Packages carrying apdebug-tagged sanitizer tests (post-GC BDD audits,
# AP Tree leaf-partition checks, behavior-cache epoch assertions at the
# facade).
APDEBUG_PKGS := . ./internal/bdd ./internal/aptree

# Benchmarks exercised by bench-smoke: the lock-free snapshot query path,
# serial and parallel, plus the mixed query/update workload. A fixed
# -benchtime keeps the step fast; it is a non-regression smoke (the
# benchmarks must run and the parallel path must stay race-clean), not a
# performance gate — numbers live in EXPERIMENTS.md.
BENCH_SMOKE := ^(BenchmarkManagerClassify|BenchmarkParallelClassify|BenchmarkParallelClassifyWithUpdates|BenchmarkBatchClassify|BenchmarkFlatClassify)$$

# The facade-level batch benchmark (single vs batched pipeline, behavior
# cache on) lives in the root package; bench-smoke runs it at a tiny
# -benchtime for the same non-regression purpose.
BENCH_SMOKE_ROOT := ^BenchmarkBehaviorBatch$$

# bench-churn's -dur (the churn experiment budgets 5×dur per engine):
# long enough that the delta engine's advantage over reconvert+rebuild is
# unambiguous at small scale, short enough for CI.
CHURN_DUR := 60ms

# Coverage floor for the observability layer: metrics and traces are what
# operators debug incidents with, so internal/obs stays near-fully tested.
COVER_PKG   := ./internal/obs
COVER_FLOOR := 90.0
COVER_OUT   := coverage-obs.out

# checkpoint-smoke's scratch directory (wiped and recreated each run).
SMOKE_DIR := /tmp/apc-checkpoint-smoke

# Fuzz targets exercised briefly by fuzz-smoke: the two binary decoders
# that parse untrusted bytes, the flat-vs-pointer differential harness
# (the compiled classify core must answer bit-identically to the pointer
# descent on arbitrary rule sets and packets), and the interval-coded
# AtomSet vs its map-of-IDs model. A short -fuzztime keeps CI fast; long
# runs are for dedicated fuzzing sessions.
FUZZ_TIME ?= 5s

# bench-flat's -dur: long enough for stable per-network Mqps columns at
# small scale, short enough for CI.
FLAT_DUR := 100ms

.PHONY: build test vet lint race apdebug bench-smoke bench-churn bench-flat cover checkpoint-smoke cluster-smoke fuzz-smoke verify-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis; see "Static analysis & sanitizers" in
# README.md for the checks and the //lint:ignore suppression syntax.
lint:
	$(GO) run ./cmd/aplint ./...

race:
	$(GO) test -race $(RACE_PKGS)

apdebug:
	$(GO) test -tags apdebug $(APDEBUG_PKGS)

bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_SMOKE)' -benchtime 200x -cpu 1,4 ./internal/aptree
	$(GO) test -run '^$$' -bench '$(BENCH_SMOKE_ROOT)' -benchtime 512x .

# Churn smoke: the incremental delta engine's updates/sec-under-query-load
# experiment at small scale. Like bench-smoke it is a non-regression gate
# (the delta engine must run and keep beating reconvert+rebuild — the
# table's speedup column); recorded numbers live in EXPERIMENTS.md.
bench-churn:
	$(GO) run ./cmd/apbench -scale small -run churn -dur $(CHURN_DUR)

# Flat-engine smoke: the compiled array classifier vs the pointer descent
# on both networks at small scale. A non-regression gate (the flat core
# must compile for every dataset and the experiment must run end to end);
# recorded numbers live in EXPERIMENTS.md.
bench-flat:
	$(GO) run ./cmd/apbench -scale small -run flat -dur $(FLAT_DUR)

# Save → restore → verify through the real binaries: apstate writes a
# checkpoint for every generator, then fully decodes and self-checks it.
# This is the end-to-end durability gate (the unit tests cover the codec;
# this covers the shipped tooling).
checkpoint-smoke:
	rm -rf $(SMOKE_DIR) && mkdir -p $(SMOKE_DIR)
	$(GO) run ./cmd/apstate save -net internet2 -scale 0.01 -out $(SMOKE_DIR)/internet2.apc
	$(GO) run ./cmd/apstate save -net stanford -scale 0.003 -out $(SMOKE_DIR)/stanford.apc
	$(GO) run ./cmd/apstate save -net multitenant -out $(SMOKE_DIR)/multitenant.apc
	$(GO) run ./cmd/apstate inspect $(SMOKE_DIR)/internet2.apc
	$(GO) run ./cmd/apstate verify $(SMOKE_DIR)/internet2.apc
	$(GO) run ./cmd/apstate verify $(SMOKE_DIR)/stanford.apc
	$(GO) run ./cmd/apstate verify $(SMOKE_DIR)/multitenant.apc
	rm -rf $(SMOKE_DIR)

# Cluster smoke: the real apserver and aprouter binaries as a 2-shard
# fleet — differential queries against an unsharded oracle, churn fan-out
# through the router, and a SIGTERM restart of one worker with warm
# restore from its final checkpoint. The in-process differential suite
# runs under plain `make test`; this gate covers the process boundary
# (flags, signals, checkpoint files, real sockets).
cluster-smoke:
	$(GO) test ./internal/cluster -run '^TestClusterProcessSmoke$$' -count=1 -v

fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZ_TIME) ./internal/bdd
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZ_TIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzFlatVsPointer$$' -fuzztime $(FUZZ_TIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzAtomSet$$' -fuzztime $(FUZZ_TIME) ./internal/predicate

# Verification smoke: apverify's exhaustive sweeps on the small fat-tree
# — loop freedom must hold, the injected loop must be found, and every
# ingress × host pair must be reachable. Covers the CLI surface plus the
# snapshot-native engine end to end; scale numbers live in EXPERIMENTS.md.
verify-smoke:
	$(GO) run ./cmd/apverify loops -net fattree -preset small
	$(GO) run ./cmd/apverify loops -net fattree -preset small -inject-loop | grep VIOLATED
	$(GO) run ./cmd/apverify reach -net fattree -preset small -all
	$(GO) run ./cmd/apverify blackholes -net fattree -preset small -all

cover:
	$(GO) test -coverprofile=$(COVER_OUT) $(COVER_PKG)
	@total=$$($(GO) tool cover -func=$(COVER_OUT) | awk '/^total:/ { gsub("%","",$$3); print $$3 }'); \
	echo "$(COVER_PKG) coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(t+0 >= f+0) }' || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

check: build vet test lint race apdebug bench-smoke bench-churn bench-flat checkpoint-smoke cluster-smoke fuzz-smoke verify-smoke cover
	@echo "all gates passed"
