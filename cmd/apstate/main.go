// Command apstate inspects, verifies, and produces AP Classifier
// checkpoint files — the operator's offline window into the durable
// state apserver writes.
//
//	apstate save -net internet2 -scale 0.01 -out ckpt.apc   # build + checkpoint
//	apstate inspect ckpt.apc                                # headers + section sizes (CRC-checked)
//	apstate verify ckpt.apc                                 # full decode + self-check
//	apstate dump ckpt.apc                                   # decoded state details
//	apstate bench -net internet2 -scale 0.01                # cold build vs warm restore timing
//
// inspect only CRC-checks and reads the cheap headers; verify performs
// the full restore (BDD rebuild, tree validation, membership
// cross-check on random packets) and is what the checkpoint-smoke CI
// step runs.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"apclassifier"
	"apclassifier/internal/checkpoint"
	"apclassifier/internal/netgen"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = cmdSave(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "dump":
		err = cmdDump(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "apstate:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: apstate <command> [flags]

commands:
  save     build a classifier and write a checkpoint file
  inspect  print checkpoint headers and section sizes (CRC-checked)
  verify   fully decode a checkpoint and self-check the restored state
  dump     print decoded checkpoint state in detail
  bench    time cold build vs checkpoint save + warm restore`)
	os.Exit(2)
}

func buildDataset(netName string, seed int64, scale float64) (*netgen.Dataset, error) {
	switch netName {
	case "internet2":
		return netgen.Internet2Like(netgen.Config{Seed: seed, RuleScale: scale}), nil
	case "stanford":
		return netgen.StanfordLike(netgen.Config{Seed: seed, RuleScale: scale}), nil
	case "multitenant":
		return netgen.MultiTenantLike(4, 3, seed), nil
	default:
		return nil, fmt.Errorf("unknown network %q", netName)
	}
}

func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	netName := fs.String("net", "internet2", "dataset: internet2, stanford or multitenant")
	scale := fs.Float64("scale", 0.01, "rule-volume scale")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "ckpt.apc", "output checkpoint file")
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	ds, err := buildDataset(*netName, *seed, *scale)
	if err != nil {
		return err
	}
	start := time.Now()
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		return err
	}
	built := time.Since(start)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	start = time.Now()
	if err := checkpoint.Encode(f, c.CheckpointSource()); err != nil {
		_ = f.Close() // the encode error is the one to report
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("%s: built in %v (%d rules, %d predicates, %d atoms), saved %d bytes to %s in %v\n",
		ds.Name, built.Round(time.Millisecond), ds.NumRules(), c.NumPredicates(), c.NumAtoms(),
		fi.Size(), *out, time.Since(start).Round(time.Millisecond))
	return nil
}

func cmdInspect(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: apstate inspect <file>")
	}
	f, err := os.Open(args[0])
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := checkpoint.Inspect(f)
	if err != nil {
		return err
	}
	fmt.Printf("format version: %d\n", info.FormatVersion)
	fmt.Printf("epoch:          %d\n", info.Epoch)
	fmt.Printf("method:         %s\n", info.Method)
	fmt.Printf("header vars:    %d bits\n", info.NumVars)
	fmt.Printf("predicates:     %d registered, %d live\n", info.NumPreds, info.NumLive)
	fmt.Printf("tree:           %d nodes, %d leaves (atoms)\n", info.NumTreeNodes, info.NumLeaves)
	fmt.Printf("dataset:        %s\n", info.DatasetName)
	names := make([]string, 0, len(info.SectionBytes))
	for name := range info.SectionBytes {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("sections (payload bytes, CRC ok):")
	for _, name := range names {
		fmt.Printf("  %-4s %d\n", name, info.SectionBytes[name])
	}
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	probes := fs.Int("probes", 500, "random packets for the membership self-check")
	seed := fs.Int64("seed", 1, "probe seed")
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: apstate verify [-probes n] [-seed s] <file>")
	}
	path := fs.Arg(0)

	start := time.Now()
	res, err := checkpoint.RestoreFile(path)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	decoded := time.Since(start)
	if err := res.SelfCheck(*probes, *seed); err != nil {
		return fmt.Errorf("self-check: %w", err)
	}
	c, err := apclassifier.NewFromRestored(res)
	if err != nil {
		return fmt.Errorf("assemble: %w", err)
	}
	fmt.Printf("%s: OK — decoded in %v, %d predicates, %d atoms, epoch %d, %d-packet self-check passed\n",
		path, decoded.Round(time.Millisecond), c.NumPredicates(), c.NumAtoms(),
		c.Manager.Version(), *probes)
	return nil
}

func cmdDump(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: apstate dump <file>")
	}
	res, err := checkpoint.RestoreFile(args[0])
	if err != nil {
		return err
	}
	snap := res.Manager.Snapshot()
	fmt.Printf("epoch %d, method %s, %d live predicates, %d atoms, avg tree depth %.2f\n",
		res.Epoch, res.Method, snap.NumLive(), snap.Tree().NumLeaves(),
		snap.Tree().AverageDepth())
	ds := res.Dataset
	fmt.Printf("dataset %s: %d boxes, %d links, %d hosts, %d fwd rules, %d ACL rules\n",
		ds.Name, len(ds.Boxes), len(ds.Links), len(ds.Hosts), ds.NumRules(), ds.NumACLRules())
	fmt.Println("wiring (box: ingress ACL predicate, per-port fwd predicates):")
	for b, w := range res.Wiring {
		fmt.Printf("  %-12s in=%-3d fwd=%v\n", ds.Boxes[b].Name, w.InACL, w.Fwd)
	}
	return nil
}

// cmdBench is the EXPERIMENTS.md "warm restart" measurement: the same
// classifier state reached cold (rule conversion + atom computation +
// tree build) and warm (decode a checkpoint), with the checkpoint's
// size and save cost alongside.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	netName := fs.String("net", "internet2", "dataset: internet2, stanford or multitenant")
	scale := fs.Float64("scale", 0.01, "rule-volume scale")
	seed := fs.Int64("seed", 1, "generator seed")
	runs := fs.Int("runs", 3, "measurement repetitions (best-of)")
	_ = fs.Parse(args) // ExitOnError: Parse never returns an error

	ds, err := buildDataset(*netName, *seed, *scale)
	if err != nil {
		return err
	}
	var c *apclassifier.Classifier
	cold := time.Duration(1<<62 - 1)
	for i := 0; i < *runs; i++ {
		dsi, _ := buildDataset(*netName, *seed, *scale)
		start := time.Now()
		ci, err := apclassifier.New(dsi, apclassifier.Options{})
		if err != nil {
			return err
		}
		if d := time.Since(start); d < cold {
			cold = d
		}
		c = ci
	}

	var buf bytes.Buffer
	saveStart := time.Now()
	if err := checkpoint.Encode(&buf, c.CheckpointSource()); err != nil {
		return err
	}
	save := time.Since(saveStart)

	warm := time.Duration(1<<62 - 1)
	for i := 0; i < *runs; i++ {
		start := time.Now()
		res, err := checkpoint.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		if _, err := apclassifier.NewFromRestored(res); err != nil {
			return err
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
	}

	fmt.Printf("%s scale=%g: %d rules, %d predicates, %d atoms\n",
		ds.Name, *scale, ds.NumRules(), c.NumPredicates(), c.NumAtoms())
	fmt.Printf("  cold build:    %v\n", cold.Round(10*time.Microsecond))
	fmt.Printf("  save:          %v (%d bytes)\n", save.Round(10*time.Microsecond), buf.Len())
	fmt.Printf("  warm restore:  %v (%.1fx faster than cold)\n",
		warm.Round(10*time.Microsecond), float64(cold)/float64(warm))
	return nil
}
