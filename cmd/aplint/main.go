// Command aplint runs the project's static-analysis suite (internal/lint)
// over the module: invariants of the BDD/AP-Tree substrate that the
// compiler cannot enforce, checked at every CI run.
//
// Usage:
//
//	aplint [-checks list] [-json] [-list] [./...]
//
// With -json, findings are emitted as a JSON array of objects with
// file/line/col/check/message fields (an empty array when clean), for
// editor and CI integrations; the human summary still goes to stderr.
//
// aplint loads every package of the enclosing module from source using only
// the standard library tool chain, so it needs no network and no installed
// dependencies. Exit status: 0 clean, 1 findings, 2 load or usage error.
//
// Findings are suppressed at the offending line with
//
//	//lint:ignore <check> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"apclassifier/internal/lint"
)

// jsonFinding is the stable machine-readable shape of one diagnostic.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	checks := flag.String("checks", "all", "comma-separated analyzer names to run")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array instead of plain text")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aplint [-checks list] [-json] [-list] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	// The only supported target is the enclosing module; accept "./..."
	// (and no argument) for command-line symmetry with the go tool.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "aplint: unsupported pattern %q (aplint always lints the enclosing module; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
		os.Exit(2)
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(m, analyzers)
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aplint: %d finding(s) in %d package(s)\n", len(diags), len(m.Pkgs))
		os.Exit(1)
	}
}
