// Command aplint runs the project's static-analysis suite (internal/lint)
// over the module: invariants of the BDD/AP-Tree substrate that the
// compiler cannot enforce, checked at every CI run.
//
// Usage:
//
//	aplint [-checks list] [-list] [./...]
//
// aplint loads every package of the enclosing module from source using only
// the standard library tool chain, so it needs no network and no installed
// dependencies. Exit status: 0 clean, 1 findings, 2 load or usage error.
//
// Findings are suppressed at the offending line with
//
//	//lint:ignore <check> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"apclassifier/internal/lint"
)

func main() {
	checks := flag.String("checks", "all", "comma-separated analyzer names to run")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: aplint [-checks list] [-list] [./...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	// The only supported target is the enclosing module; accept "./..."
	// (and no argument) for command-line symmetry with the go tool.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "aplint: unsupported pattern %q (aplint always lints the enclosing module; use ./...)\n", arg)
			os.Exit(2)
		}
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
		os.Exit(2)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
		os.Exit(2)
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aplint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(m, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "aplint: %d finding(s) in %d package(s)\n", len(diags), len(m.Pkgs))
		os.Exit(1)
	}
}
