// Command apsoak is a randomized differential tester: it drives the AP
// Classifier, the rule-table oracle, header-space analysis, and the
// Veriflow-style trie with the same queries under continuous rule churn
// and periodic reconstructions, and fails loudly on any divergence.
//
//	apsoak -seconds 30 -seed 7
//
// Every behavior divergence in any engine is a bug in exactly one of four
// independent implementations — which is what makes the test sharp.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"apclassifier"
	"apclassifier/internal/hsa"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
	"apclassifier/internal/trie"
)

func main() {
	seconds := flag.Int("seconds", 20, "how long to soak")
	seed := flag.Int64("seed", 1, "PRNG seed")
	scale := flag.Float64("scale", 0.01, "dataset scale")
	netName := flag.String("net", "internet2", "dataset: internet2, stanford or multitenant")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var ds *netgen.Dataset
	switch *netName {
	case "internet2":
		ds = netgen.Internet2Like(netgen.Config{Seed: *seed, RuleScale: *scale})
	case "stanford":
		ds = netgen.StanfordLike(netgen.Config{Seed: *seed, RuleScale: *scale / 3})
	case "multitenant":
		ds = netgen.MultiTenantLike(4, 3, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
		os.Exit(2)
	}
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var installed []struct {
		box int
		p   rule.Prefix
	}
	queries, churns, rebuilds := 0, 0, 0
	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	for time.Now().Before(deadline) {
		// Churn: install or remove a random more-specific rule.
		switch rng.Intn(10) {
		case 0:
			box := rng.Intn(len(ds.Boxes))
			spec := &ds.Boxes[box]
			parent := spec.Fwd.Rules[rng.Intn(len(spec.Fwd.Rules))]
			if parent.Prefix.Length < 30 {
				np := rule.P(parent.Prefix.Value|rng.Uint32()&^(^uint32(0)<<uint(32-parent.Prefix.Length)),
					parent.Prefix.Length+2)
				dup := false
				for _, r := range spec.Fwd.Rules {
					if r.Prefix == np {
						dup = true
					}
				}
				if !dup {
					c.AddFwdRule(box, rule.FwdRule{Prefix: np, Port: parent.Port})
					installed = append(installed, struct {
						box int
						p   rule.Prefix
					}{box, np})
					churns++
				}
			}
		case 1:
			if len(installed) > 0 {
				k := rng.Intn(len(installed))
				c.RemoveFwdRule(installed[k].box, installed[k].p)
				installed = append(installed[:k], installed[k+1:]...)
				churns++
			}
		case 2:
			if rng.Intn(4) == 0 {
				c.Reconstruct(rng.Intn(2) == 0)
				rebuilds++
			}
		}

		// Rebuild the slow engines every so often (they are static).
		hn := hsa.Compile(ds)
		ts := trie.NewSim(ds)

		// Differential queries.
		for i := 0; i < 50; i++ {
			f := ds.RandomFields(rng)
			ing := rng.Intn(len(ds.Boxes))
			queries++

			oracle := ds.Simulate(ing, f)
			ap := c.Behavior(ing, ds.PacketFromFields(f))
			hs := hn.Reach(ing, ds.PacketFromFields(f))
			tr := ts.Behavior(ing, f)

			oDel := delivSet(oracle.Delivered)
			apDel := map[string]bool{}
			for _, d := range ap.Deliveries {
				apDel[d.Host] = true
			}
			if !sameSet(oDel, apDel) {
				die("AP Classifier", f, ing, oracle.Delivered, ap.String())
			}
			if !sameSet(oDel, delivSet(hs.Delivered)) {
				die("HSA", f, ing, oracle.Delivered, fmt.Sprint(hs.Delivered))
			}
			if !sameSet(oDel, delivSet(tr.Delivered)) {
				die("trie", f, ing, oracle.Delivered, fmt.Sprint(tr.Delivered))
			}
		}
	}
	fmt.Printf("soak PASS: %d queries, %d rule churns, %d reconstructions, 4 engines agreed throughout\n",
		queries, churns, rebuilds)
}

func delivSet(hosts []string) map[string]bool {
	m := map[string]bool{}
	for _, h := range hosts {
		m[h] = true
	}
	return m
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func die(engine string, f rule.Fields, ing int, want []string, got string) {
	fmt.Fprintf(os.Stderr, "DIVERGENCE in %s: fields %+v ingress %d\n  oracle: %v\n  got: %s\n",
		engine, f, ing, want, got)
	os.Exit(1)
}
