// Command apbench regenerates the paper's evaluation tables and figures
// (§VII) on the synthetic datasets and prints them as text tables.
//
// Usage:
//
//	apbench [-scale small|mid|full] [-run all|tableI,fig4,fig9,fig10,mem,fig11,fig12,fig12par,fig13,fig14,fig14par,fig15,tableII,batch,optgap,ruleupdate,churn,scaling,flat,cluster]
//
// At -scale full the rule volumes match Table I of the paper (≈126k rules
// for Internet2, ≈757k + 1,584 ACL rules for Stanford); expect several
// minutes of dataset compilation.
//
// -metrics dumps the process-wide obs registry (the same registry
// apserver's /metrics serves) in Prometheus text format after the
// selected experiments finish, so offline benchmark numbers and
// production metrics come from one instrumentation source.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"apclassifier/internal/experiments"
	"apclassifier/internal/obs"
)

func main() {
	scaleFlag := flag.String("scale", "", "dataset scale: small, mid (default) or full; overrides APBENCH_SCALE")
	runFlag := flag.String("run", "all", "comma-separated experiment ids (tableI,fig4,fig9,fig10,mem,fig11,fig12,fig12par,fig13,fig14,fig14par,fig15,tableII,batch,optgap,ruleupdate,churn,scaling,flat,cluster,verify) or 'all'")
	dur := flag.Duration("dur", 200*time.Millisecond, "minimum measurement duration per throughput point")
	trees := flag.Int("trees", 0, "random trees for fig4/fig9/fig10/fig12 (0 = scale default)")
	batchSize := flag.Int("batch", 0, "measure the batch experiment at this single batch size (0 = 16/64/256 sweep)")
	metrics := flag.String("metrics", "", "after the run, dump the obs registry in Prometheus text format to this file ('-' for stdout)")
	flag.Parse()

	if *scaleFlag != "" {
		if err := os.Setenv("APBENCH_SCALE", *scaleFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	scale := experiments.DefaultScale()

	nTrees := *trees
	if nTrees == 0 {
		nTrees = 20
		if scale.Name == "full" {
			nTrees = 100 // the paper's Best-from-Random uses 100 trees
		}
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*runFlag, ",") {
		want[strings.TrimSpace(id)] = true
	}
	sel := func(id string) bool { return want["all"] || want[id] }

	// The verify experiment generates its own fat-tree datasets; skip the
	// (expensive) shared Env when nothing else was selected.
	needEnv := want["all"]
	for id := range want {
		if id != "" && id != "all" && id != "verify" {
			needEnv = true
		}
	}
	var env *experiments.Env
	if needEnv {
		fmt.Printf("building datasets at scale %q (internet2 ×%.3g, stanford ×%.3g)...\n",
			scale.Name, scale.I2, scale.SF)
		start := time.Now()
		var err error
		env, err = experiments.NewEnv(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("datasets compiled in %v\n\n", time.Since(start).Round(time.Millisecond))
	}

	print := func(tabs ...*experiments.Table) {
		for _, t := range tabs {
			fmt.Println(t)
		}
	}

	if sel("tableI") {
		print(env.TableI())
	}
	if sel("fig4") {
		print(env.Fig4(nTrees, 256, *dur)...)
	}
	if sel("fig9") {
		print(env.Fig9(nTrees))
	}
	if sel("fig10") {
		print(env.Fig10(nTrees)...)
	}
	if sel("mem") {
		print(env.MemoryUsage())
	}
	if sel("fig11") {
		print(env.Fig11(nTrees))
	}
	if sel("fig12") {
		print(env.Fig12(nTrees, 256, *dur))
	}
	if sel("fig12par") {
		print(env.Fig12Parallel(256, *dur))
	}
	if sel("fig13") {
		print(env.Fig13(40)...)
	}
	if sel("fig14") {
		for _, rate := range []int{100, 200} {
			print(env.Fig14(rate, 1200*time.Millisecond, 100*time.Millisecond, 400*time.Millisecond)...)
		}
	}
	if sel("fig14par") {
		print(env.Fig14Parallel(0, 200, 1200*time.Millisecond, 100*time.Millisecond, 400*time.Millisecond)...)
	}
	if sel("fig15") {
		print(env.Fig15(10, 512, *dur)...)
	}
	if sel("tableII") {
		print(env.TableII(256, *dur))
	}
	if sel("batch") {
		sizes := []int{16, 64, 256}
		if *batchSize > 0 {
			sizes = []int{*batchSize}
		}
		print(env.BatchThroughput(sizes, 4096, *dur))
	}
	if sel("flat") {
		print(env.FlatVsPointer(4096, *dur))
	}
	if sel("optgap") {
		print(env.OptimalityGap(10, 20))
	}
	if sel("ruleupdate") {
		print(env.RuleUpdateCost(60))
	}
	if sel("churn") {
		print(env.Churn(5**dur, 2))
	}
	if sel("scaling") {
		scales := []float64{0.02, 0.05, 0.1, 0.2, 0.5}
		if scale.Name == "full" {
			scales = append(scales, 1.0)
		}
		print(env.Scaling(scales, 256, *dur))
	}
	if sel("cluster") {
		print(env.ClusterThroughput([]int{1, 2, 4, 8}, 256, 4, 5**dur))
	}
	if sel("verify") {
		tab, err := experiments.Verify(experiments.VerifyPresets(scale))
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		print(tab)
	}

	if *metrics != "" {
		if err := dumpMetrics(*metrics); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}

// dumpMetrics writes the process-wide registry to path ('-' = stdout).
func dumpMetrics(path string) error {
	if path == "-" {
		return obs.Default.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default.WritePrometheus(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
