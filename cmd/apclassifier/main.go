// Command apclassifier is a CLI for packet behavior identification: it
// generates a dataset, compiles it, and answers behavior queries for
// packet headers.
//
// Usage examples:
//
//	apclassifier -net internet2 -scale 0.05 -stats
//	apclassifier -net internet2 -dst 10.1.2.3 -ingress seattle
//	apclassifier -net stanford -src 171.66.1.2 -dst 171.64.9.9 -dport 80 -proto 6 -ingress zone03
//	apclassifier -net internet2 -random 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

func main() {
	netName := flag.String("net", "internet2", "dataset: internet2, stanford or multitenant")
	scale := flag.Float64("scale", 0.05, "rule-volume scale relative to the paper's dataset")
	seed := flag.Int64("seed", 1, "generator seed")
	load := flag.String("load", "", "load a dataset snapshot file instead of generating")
	dump := flag.String("dump", "", "write the dataset snapshot to this file and exit")
	stats := flag.Bool("stats", false, "print dataset/classifier statistics and exit")
	dot := flag.Bool("dot", false, "print the topology in Graphviz format and exit")
	ingress := flag.String("ingress", "", "ingress box name (default: first box)")
	src := flag.String("src", "", "source IPv4 address")
	dst := flag.String("dst", "", "destination IPv4 address")
	sport := flag.Uint("sport", 0, "source port")
	dport := flag.Uint("dport", 0, "destination port")
	proto := flag.Uint("proto", 6, "IP protocol number")
	randomN := flag.Int("random", 0, "instead of one query, run N random queries and summarize")
	flag.Parse()

	var ds *netgen.Dataset
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ds, err = netgen.Read(f)
		_ = f.Close() // read-only; parse errors are what matter
		if err != nil {
			fmt.Fprintln(os.Stderr, "parse error:", err)
			os.Exit(1)
		}
	} else {
		switch *netName {
		case "internet2":
			ds = netgen.Internet2Like(netgen.Config{Seed: *seed, RuleScale: *scale})
		case "stanford":
			ds = netgen.StanfordLike(netgen.Config{Seed: *seed, RuleScale: *scale})
		case "multitenant":
			ds = netgen.MultiTenantLike(4, 3, *seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
			os.Exit(2)
		}
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := ds.Write(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil { // written data may be lost on close failure
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: %d boxes, %d rules, %d ACL rules\n", *dump, len(ds.Boxes), ds.NumRules(), ds.NumACLRules())
		return
	}

	start := time.Now()
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compile error:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d boxes, %d rules, %d ACL rules -> %d predicates, %d atoms, avg tree depth %.1f (compiled in %v)\n",
		ds.Name, len(ds.Boxes), ds.NumRules(), ds.NumACLRules(),
		c.NumPredicates(), c.NumAtoms(), c.AverageDepth(), time.Since(start).Round(time.Millisecond))

	if *stats {
		fmt.Printf("memory estimate: %.2f MB allocated, %.2f MB live\n",
			float64(c.MemBytes())/1e6, float64(c.Manager.DD().LiveMemBytes())/1e6)
		return
	}
	if *dot {
		fmt.Print(c.Net.DOT(ds.Name))
		return
	}

	inBox := 0
	if *ingress != "" {
		inBox = c.Net.BoxByName(*ingress)
		if inBox < 0 {
			fmt.Fprintf(os.Stderr, "no box named %q; boxes:", *ingress)
			for _, b := range c.Net.Boxes {
				fmt.Fprintf(os.Stderr, " %s", b.Name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
	}

	if *randomN > 0 {
		rng := rand.New(rand.NewSource(*seed))
		for i := 0; i < *randomN; i++ {
			f := ds.RandomFields(rng)
			ing := rng.Intn(len(ds.Boxes))
			query(c, ds, ing, f)
		}
		return
	}

	f := rule.Fields{SrcPort: uint16(*sport), DstPort: uint16(*dport), Proto: uint8(*proto)}
	if *src != "" {
		f.Src = parseIPv4(*src)
	}
	if *dst == "" {
		fmt.Fprintln(os.Stderr, "need -dst (or -random N / -stats)")
		os.Exit(2)
	}
	f.Dst = parseIPv4(*dst)
	query(c, ds, inBox, f)
}

func query(c *apclassifier.Classifier, ds *netgen.Dataset, ingress int, f rule.Fields) {
	pkt := ds.PacketFromFields(f)
	leaf := c.Classify(pkt)
	b := c.Behavior(ingress, pkt)
	fmt.Printf("\npacket %s entering %s\n", ds.Layout.String(pkt), c.Net.Boxes[ingress].Name)
	fmt.Printf("  atomic predicate: leaf #%d at depth %d\n", leaf.AtomID, leaf.Depth)
	if len(b.Edges) > 0 {
		fmt.Print("  path: ", c.Net.Boxes[ingress].Name)
		for _, e := range b.Edges {
			switch {
			case e.To.Host != "":
				fmt.Printf(" -> host %s", e.To.Host)
			default:
				fmt.Printf(" -> %s", c.Net.Boxes[e.To.Box].Name)
			}
		}
		fmt.Println()
	}
	for _, d := range b.Deliveries {
		fmt.Printf("  delivered to %s via %s port %d\n", d.Host, c.Net.Boxes[d.Box].Name, d.Port)
	}
	for _, d := range b.Drops {
		fmt.Printf("  dropped at %s: %s\n", c.Net.Boxes[d.Box].Name, d.Reason)
	}
}

func parseIPv4(s string) uint32 {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		fmt.Fprintf(os.Stderr, "bad IPv4 address %q\n", s)
		os.Exit(2)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			fmt.Fprintf(os.Stderr, "bad IPv4 address %q\n", s)
			os.Exit(2)
		}
		v = v<<8 | uint32(n)
	}
	return v
}
