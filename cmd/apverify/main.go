// Command apverify runs network-wide invariant checks over a dataset:
// exact reachability sets, loop freedom, blackholes, waypoint enforcement,
// pairwise isolation, and the box connectivity matrix.
//
// The first argument selects a subcommand; dataset flags follow it.
//
// Usage examples:
//
//	apverify loops -net internet2 -scale 0.02
//	apverify loops -net fattree -preset large
//	apverify reach -net fattree -preset small -from p00-edge00 -host p01e00h0
//	apverify reach -net fattree -preset small -all
//	apverify blackholes -net internet2 -from seattle
//	apverify waypoint -net stanford -scale 0.01 -from zone00 -host h6_14 -via bbra
//	apverify isolated -net internet2 -from seattle -to atlanta
//	apverify matrix -net internet2
//	apverify reach -load snapshot.txt -from seattle -host h2_9
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/verify"
)

const usage = `usage: apverify <command> [flags]

commands:
  reach       exact packet set reaching -host from -from (or -all hosts × ingresses)
  loops       enumerate every (ingress, atom) pair that loops
  blackholes  packet set dropped with no route from -from (or -all ingresses)
  waypoint    packets reaching -host from -from that bypass -via
  isolated    report whether -to is unreachable from -from
  matrix      box connectivity matrix (atoms from row-ingress traversing column-box)

dataset flags (shared): -net {internet2,stanford,multitenant,fattree}
  -scale F -seed N (generated nets), -preset {small,mid,large} -inject-loop
  (fattree), -load FILE (snapshot instead of generating)
`

func main() {
	if len(os.Args) < 2 {
		fmt.Fprint(os.Stderr, usage)
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("apverify "+cmd, flag.ExitOnError)
	netName := fs.String("net", "internet2", "dataset: internet2, stanford, multitenant or fattree")
	scale := fs.Float64("scale", 0.02, "rule-volume scale (internet2/stanford)")
	seed := fs.Int64("seed", 1, "generator seed (internet2/stanford/multitenant)")
	preset := fs.String("preset", "small", "fat-tree preset: small, mid or large")
	injectLoop := fs.Bool("inject-loop", false, "fattree: inject a routing loop on 10.254.0.0/16")
	load := fs.String("load", "", "load a dataset snapshot file instead of generating")
	from := fs.String("from", "", "ingress box name")
	host := fs.String("host", "", "destination host name")
	via := fs.String("via", "", "required waypoint box name")
	to := fs.String("to", "", "target box name (isolated)")
	all := fs.Bool("all", false, "sweep every ingress (reach: every ingress × host pair)")
	switch cmd {
	case "reach", "loops", "blackholes", "waypoint", "isolated", "matrix":
	case "-h", "-help", "--help", "help":
		fmt.Print(usage)
		return
	default:
		fmt.Fprintf(os.Stderr, "apverify: unknown command %q\n%s", cmd, usage)
		os.Exit(2)
	}
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	var ds *netgen.Dataset
	var err error
	switch {
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			fatal(ferr)
		}
		ds, err = netgen.Read(f)
		_ = f.Close() // read-only; parse errors are what matter
	case *netName == "internet2":
		ds = netgen.Internet2Like(netgen.Config{Seed: *seed, RuleScale: *scale})
	case *netName == "stanford":
		ds = netgen.StanfordLike(netgen.Config{Seed: *seed, RuleScale: *scale})
	case *netName == "multitenant":
		ds = netgen.MultiTenantLike(4, 3, *seed)
	case *netName == "fattree":
		var cfg netgen.FatTreeConfig
		cfg, err = netgen.FatTreePreset(*preset)
		if err == nil {
			cfg.InjectLoop = *injectLoop
			ds = netgen.FatTree(cfg)
		}
	default:
		err = fmt.Errorf("unknown network %q", *netName)
	}
	if err != nil {
		fatal(err)
	}

	buildStart := time.Now()
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		fatal(err)
	}
	a := verify.New(c)
	fmt.Printf("%s: %d boxes, %d rules, %d predicates, %d atoms (compiled in %v)\n",
		ds.Name, len(ds.Boxes), ds.NumRules(), c.NumPredicates(), a.NumAtoms(),
		time.Since(buildStart).Round(time.Millisecond))

	boxID := func(name string) int {
		id := c.Net.BoxByName(name)
		if id < 0 {
			fatal(fmt.Errorf("no box named %q", name))
		}
		return id
	}
	need := func(val *string, flagName string) string {
		if *val == "" {
			fatal(fmt.Errorf("%s requires -%s", cmd, flagName))
		}
		return *val
	}

	start := time.Now()
	switch cmd {
	case "reach":
		if *all {
			pairs, nonEmpty := 0, 0
			for ingress := range c.Net.Boxes {
				for _, h := range ds.Hosts {
					pairs++
					if !a.ReachSet(ingress, h.Name).Empty() {
						nonEmpty++
					}
				}
			}
			fmt.Printf("all-pairs reachability: %d ingress × host pairs, %d non-empty, %v\n",
				pairs, nonEmpty, time.Since(start).Round(time.Millisecond))
			break
		}
		f, h := need(from, "from"), need(host, "host")
		set := a.ReachSet(boxID(f), h)
		fmt.Printf("reach(%s -> %s): %s\n", f, h, a.Describe(set))
	case "blackholes":
		if *all {
			atoms := 0
			for ingress := range c.Net.Boxes {
				atoms += a.Blackholes(ingress).NumAtoms()
			}
			fmt.Printf("blackholes: %d (ingress, atom) pairs across %d ingresses, %v\n",
				atoms, len(c.Net.Boxes), time.Since(start).Round(time.Millisecond))
			break
		}
		f := need(from, "from")
		set := a.Blackholes(boxID(f))
		fmt.Printf("blackholes(%s): %s\n", f, a.Describe(set))
	case "waypoint":
		f, h, v := need(from, "from"), need(host, "host"), need(via, "via")
		set := a.WaypointViolations(boxID(f), h, boxID(v))
		status := "HOLDS"
		if !set.Empty() {
			status = "VIOLATED"
		}
		fmt.Printf("waypoint %s for %s->%s: %s (%s)\n", v, f, h, status, a.Describe(set))
	case "isolated":
		f, tn := need(from, "from"), need(to, "to")
		fromID, toID := boxID(f), boxID(tn)
		if a.Isolated(fromID, toID) {
			fmt.Printf("isolation %s -x- %s: HOLDS\n", f, tn)
		} else {
			fmt.Printf("isolation %s -x- %s: VIOLATED, e.g. %s\n", f, tn, a.Describe(a.CanReach(fromID, toID)))
		}
	case "loops":
		ls := a.Loops()
		elapsed := time.Since(start).Round(time.Millisecond)
		if len(ls) == 0 {
			fmt.Printf("loop freedom: HOLDS for every packet from every ingress (%v)\n", elapsed)
		} else {
			fmt.Printf("loop freedom: VIOLATED by %d (ingress, atom) pairs (%v)\n", len(ls), elapsed)
			for i, l := range ls {
				if i == 5 {
					fmt.Printf("  ... and %d more\n", len(ls)-5)
					break
				}
				fmt.Printf("  atom %d from %s\n", l.AtomID, c.Net.Boxes[l.Ingress].Name)
			}
		}
	case "matrix":
		m := a.ReachabilityMatrix()
		fmt.Printf("(computed in %v)\n", time.Since(start).Round(time.Millisecond))
		if len(m) > 40 {
			// Too wide to print: summarize row totals instead.
			for i, row := range m {
				reach := 0
				for j, v := range row {
					if j != i && v > 0 {
						reach++
					}
				}
				if i < 10 || reach != len(m)-1 {
					fmt.Printf("%14s reaches %d/%d boxes\n", c.Net.Boxes[i].Name, reach, len(m)-1)
				}
			}
			fmt.Printf("(%d boxes total; fully-connected rows beyond the first 10 elided)\n", len(m))
			break
		}
		fmt.Printf("%14s", "")
		for _, b := range c.Net.Boxes {
			fmt.Printf("%7.6s", b.Name)
		}
		fmt.Println()
		for i, row := range m {
			fmt.Printf("%14s", c.Net.Boxes[i].Name)
			for _, v := range row {
				fmt.Printf("%7d", v)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apverify:", err)
	os.Exit(1)
}
