// Command apverify runs network-wide invariant checks over a dataset:
// exact reachability sets, loop freedom, blackholes, waypoint enforcement,
// pairwise isolation, and the box connectivity matrix.
//
// Usage examples:
//
//	apverify -net internet2 -scale 0.02 -loops -matrix
//	apverify -load snapshot.txt -reach seattle:h2_9
//	apverify -net stanford -scale 0.01 -waypoint zone00:h6_14:bbra
//	apverify -net internet2 -isolated seattle:atlanta
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/verify"
)

func main() {
	netName := flag.String("net", "internet2", "dataset: internet2, stanford or multitenant")
	scale := flag.Float64("scale", 0.02, "rule-volume scale")
	seed := flag.Int64("seed", 1, "generator seed")
	load := flag.String("load", "", "load a dataset snapshot file instead of generating")
	loops := flag.Bool("loops", false, "check loop freedom for all packets from all ingresses")
	matrix := flag.Bool("matrix", false, "print the box connectivity matrix")
	reach := flag.String("reach", "", "box:host — print the exact packet set reaching host from box")
	blackholes := flag.String("blackholes", "", "box — print the packet set blackholed from box")
	waypoint := flag.String("waypoint", "", "box:host:waypoint — packets reaching host from box that bypass waypoint")
	isolated := flag.String("isolated", "", "boxA:boxB — report whether boxB is unreachable from boxA")
	flag.Parse()

	var ds *netgen.Dataset
	var err error
	switch {
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			fatal(ferr)
		}
		ds, err = netgen.Read(f)
		_ = f.Close() // read-only; parse errors are what matter
	case *netName == "internet2":
		ds = netgen.Internet2Like(netgen.Config{Seed: *seed, RuleScale: *scale})
	case *netName == "stanford":
		ds = netgen.StanfordLike(netgen.Config{Seed: *seed, RuleScale: *scale})
	case *netName == "multitenant":
		ds = netgen.MultiTenantLike(4, 3, *seed)
	default:
		err = fmt.Errorf("unknown network %q", *netName)
	}
	if err != nil {
		fatal(err)
	}

	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		fatal(err)
	}
	a := verify.New(c)
	fmt.Printf("%s: %d boxes, %d rules, %d predicates, %d atoms\n",
		ds.Name, len(ds.Boxes), ds.NumRules(), c.NumPredicates(), a.NumAtoms())

	boxID := func(name string) int {
		id := c.Net.BoxByName(name)
		if id < 0 {
			fatal(fmt.Errorf("no box named %q", name))
		}
		return id
	}

	if *reach != "" {
		parts := split(*reach, 2)
		set := a.ReachSet(boxID(parts[0]), parts[1])
		fmt.Printf("reach(%s -> %s): %s\n", parts[0], parts[1], a.Describe(set))
	}
	if *blackholes != "" {
		set := a.Blackholes(boxID(*blackholes))
		fmt.Printf("blackholes(%s): %s\n", *blackholes, a.Describe(set))
	}
	if *waypoint != "" {
		parts := split(*waypoint, 3)
		set := a.WaypointViolations(boxID(parts[0]), parts[1], boxID(parts[2]))
		status := "HOLDS"
		if a.Describe(set) != "(empty)" {
			status = "VIOLATED"
		}
		fmt.Printf("waypoint %s for %s->%s: %s (%s)\n", parts[2], parts[0], parts[1], status, a.Describe(set))
	}
	if *isolated != "" {
		parts := split(*isolated, 2)
		from, to := boxID(parts[0]), boxID(parts[1])
		if a.Isolated(from, to) {
			fmt.Printf("isolation %s -x- %s: HOLDS\n", parts[0], parts[1])
		} else {
			fmt.Printf("isolation %s -x- %s: VIOLATED, e.g. %s\n", parts[0], parts[1], a.Describe(a.CanReach(from, to)))
		}
	}
	if *loops {
		ls := a.Loops()
		if len(ls) == 0 {
			fmt.Println("loop freedom: HOLDS for every packet from every ingress")
		} else {
			fmt.Printf("loop freedom: VIOLATED by %d (ingress, atom) pairs\n", len(ls))
			for i, l := range ls {
				if i == 5 {
					fmt.Printf("  ... and %d more\n", len(ls)-5)
					break
				}
				fmt.Printf("  atom %d from %s\n", l.AtomID, c.Net.Boxes[l.Ingress].Name)
			}
		}
	}
	if *matrix {
		m := a.ReachabilityMatrix()
		fmt.Printf("%14s", "")
		for _, b := range c.Net.Boxes {
			fmt.Printf("%7.6s", b.Name)
		}
		fmt.Println()
		for i, row := range m {
			fmt.Printf("%14s", c.Net.Boxes[i].Name)
			for _, v := range row {
				fmt.Printf("%7d", v)
			}
			fmt.Println()
		}
	}
}

func split(s string, n int) []string {
	parts := strings.Split(s, ":")
	if len(parts) != n {
		fatal(fmt.Errorf("expected %d colon-separated fields in %q", n, s))
	}
	return parts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apverify:", err)
	os.Exit(1)
}
