// Command apserver runs AP Classifier as an HTTP/JSON service — the form
// an SDN controller would consume it in.
//
//	apserver -net internet2 -scale 0.05 -listen :8080
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/query -d '{"ingress":"seattle","dst":"10.1.2.3"}'
//	curl -s -X POST localhost:8080/rules/add -d '{"box":"seattle","prefix":"240.0.0.0/8","port":-1}'
//	curl -s localhost:8080/verify/loops
//
// Durability (see README "Checkpoint & warm restart"):
//
//	apserver -net internet2 -checkpoint-dir /var/lib/apc   # checkpoint continuously
//	apserver -checkpoint-dir /var/lib/apc -restore         # warm-restart from the newest checkpoint
//	curl -s -X POST localhost:8080/checkpoint              # force a save right now
//
// With -checkpoint-dir set, a background runner saves the published
// classifier epoch after every coalesced update burst and on SIGINT/
// SIGTERM writes a final checkpoint before exiting, so the next
// -restore start resumes exactly where this one stopped — without
// re-converting rules or rebuilding the AP Tree.
//
// Observability (see README "Observability"):
//
//	curl -s localhost:8080/metrics        # Prometheus text exposition
//	curl -s localhost:8080/debug/trace?n=8 # last 8 per-query stage traces
//	go tool pprof localhost:8080/debug/pprof/profile
//
// Cluster mode (see README "Cluster mode" and DESIGN §12): run N workers
// with -shard k/N behind cmd/aprouter. A worker refuses queries outside
// its header-space slice (421), reports readiness on /healthz, and on
// SIGTERM drains in-flight requests before writing its final checkpoint.
// -bootstrap-from pulls a sibling's newest checkpoint so a joining
// worker warm-restores instead of rebuilding from rules:
//
//	apserver -net internet2 -shard 0/2 -listen :8081 -checkpoint-dir /var/lib/apc0
//	apserver -net internet2 -shard 1/2 -listen :8082 -checkpoint-dir /var/lib/apc1 \
//	    -bootstrap-from http://localhost:8081
//	aprouter -shards http://localhost:8081,http://localhost:8082 -listen :8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"apclassifier"
	"apclassifier/internal/checkpoint"
	"apclassifier/internal/cluster"
	"apclassifier/internal/netgen"
	"apclassifier/internal/server"
)

func main() {
	netName := flag.String("net", "internet2", "dataset: internet2, stanford or multitenant")
	scale := flag.Float64("scale", 0.05, "rule-volume scale")
	seed := flag.Int64("seed", 1, "generator seed")
	load := flag.String("load", "", "load a dataset snapshot file instead of generating")
	listen := flag.String("listen", ":8080", "listen address")
	ckptDir := flag.String("checkpoint-dir", "", "directory for durable classifier checkpoints (empty = disabled)")
	ckptInterval := flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint cadence (0 = only update-triggered)")
	ckptKeep := flag.Int("checkpoint-keep", 3, "checkpoint generations to retain")
	restore := flag.Bool("restore", false, "warm-restart from the newest checkpoint in -checkpoint-dir")
	shardSpec := flag.String("shard", "", "serve one shard of a cluster partition, as \"k/N\" (empty = unsharded)")
	shardMode := flag.String("shard-mode", "header", "partition function: header (5-tuple hash) or ingress (ingress-box hash)")
	bootstrapFrom := flag.String("bootstrap-from", "", "peer apserver base URL to fetch the newest checkpoint from before starting (requires -checkpoint-dir)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "grace period for in-flight requests on SIGTERM before the final checkpoint")
	flag.Parse()

	var part cluster.Partition
	if *shardSpec != "" {
		mode, err := cluster.ParseMode(*shardMode)
		if err != nil {
			fatal(err)
		}
		if part, err = cluster.ParseShard(*shardSpec, mode); err != nil {
			fatal(err)
		}
	}

	var dir *checkpoint.Dir
	if *ckptDir != "" {
		var err error
		if dir, err = checkpoint.Open(*ckptDir, *ckptKeep); err != nil {
			fatal(err)
		}
	}

	// Peer bootstrap: pull the sibling's newest checkpoint into our own
	// directory, then take the warm-restore path below as if we had saved
	// it ourselves. A peer with no checkpoint yet (404) is not an error —
	// the fleet's first worker always builds cold.
	if *bootstrapFrom != "" {
		if dir == nil {
			fatal(errors.New("-bootstrap-from requires -checkpoint-dir"))
		}
		switch path, err := bootstrap(dir, *bootstrapFrom); {
		case err == nil:
			fmt.Printf("bootstrapped checkpoint from %s: %s\n", *bootstrapFrom, path)
			*restore = true
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("peer %s has no checkpoint yet; building cold\n", *bootstrapFrom)
		default:
			fatal(err)
		}
	}

	// Warm path: rebuild the classifier from the newest checkpoint — no
	// rule conversion, no atomic-predicate computation, no tree build.
	// An empty directory falls back to a cold build (first boot); a
	// corrupt-only directory is an error worth stopping for.
	var c *apclassifier.Classifier
	if *restore {
		if dir == nil {
			fatal(errors.New("-restore requires -checkpoint-dir"))
		}
		start := time.Now()
		rc, err := apclassifier.RestoreDir(dir)
		switch {
		case err == nil:
			c = rc
			fmt.Printf("%s warm-restarted in %v from %s: %d rules, %d predicates, %d atoms (epoch %d)\n",
				c.Dataset.Name, time.Since(start).Round(time.Millisecond), dir.Path(),
				c.Dataset.NumRules(), c.NumPredicates(), c.NumAtoms(), c.Manager.Version())
		case errors.Is(err, os.ErrNotExist):
			fmt.Printf("no checkpoint in %s yet; building cold\n", dir.Path())
		default:
			fatal(err)
		}
	}
	if c == nil {
		ds, err := buildDataset(*netName, *load, *seed, *scale)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		if c, err = apclassifier.New(ds, apclassifier.Options{}); err != nil {
			fatal(err)
		}
		fmt.Printf("%s compiled in %v: %d rules, %d predicates, %d atoms\n",
			ds.Name, time.Since(start).Round(time.Millisecond),
			ds.NumRules(), c.NumPredicates(), c.NumAtoms())
	}

	s := server.New(c)
	if part.Enabled() {
		s.SetPartition(part)
		fmt.Printf("serving shard %s (%s partition)\n", part, part.Mode)
	}
	var runner *checkpoint.Runner
	if dir != nil {
		runner = s.EnableCheckpoints(dir, checkpoint.RunnerConfig{
			Interval: *ckptInterval,
			OnError:  func(err error) { fmt.Fprintln(os.Stderr, "apserver: checkpoint:", err) },
		})
		fmt.Printf("checkpointing to %s every %v (and after updates)\n", dir.Path(), *ckptInterval)
	}

	fmt.Printf("listening on %s\n", *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case got := <-sig:
		fmt.Printf("\nreceived %s; draining\n", got)
		// Drain order matters: flip /healthz to not-ready first so the
		// router stops routing here, then let in-flight requests finish,
		// and only then write the final checkpoint — so the checkpoint
		// includes every update acknowledged before the listener closed.
		s.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		// In-flight requests get the grace period; a timeout just means we
		// proceed to the final checkpoint with whatever state is published.
		_ = srv.Shutdown(ctx)
		cancel()
		if runner != nil {
			runner.Stop() // writes the final checkpoint if state is dirty
			if latest, err := dir.Latest(); err == nil {
				fmt.Printf("final checkpoint: %s (restart with -restore to resume)\n", latest)
			}
		}
	}
}

// bootstrap fetches a peer's newest checkpoint and commits it into dir.
// A peer reporting 404 (no checkpoint committed yet) maps onto
// os.ErrNotExist so the caller can fall back to a cold build.
func bootstrap(dir *checkpoint.Dir, baseURL string) (string, error) {
	url := strings.TrimRight(baseURL, "/") + "/checkpoint/latest"
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get(url)
	if err != nil {
		return "", fmt.Errorf("bootstrap: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return dir.Ingest(resp.Body)
	case http.StatusNotFound:
		return "", fmt.Errorf("bootstrap: peer has no checkpoint: %w", os.ErrNotExist)
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("bootstrap: %s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
}

func buildDataset(netName, load string, seed int64, scale float64) (*netgen.Dataset, error) {
	switch {
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		ds, err := netgen.Read(f)
		_ = f.Close() // read-only; parse errors are what matter
		return ds, err
	case netName == "internet2":
		return netgen.Internet2Like(netgen.Config{Seed: seed, RuleScale: scale}), nil
	case netName == "stanford":
		return netgen.StanfordLike(netgen.Config{Seed: seed, RuleScale: scale}), nil
	case netName == "multitenant":
		return netgen.MultiTenantLike(4, 3, seed), nil
	default:
		return nil, fmt.Errorf("unknown network %q", netName)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apserver:", err)
	os.Exit(1)
}
