// Command apserver runs AP Classifier as an HTTP/JSON service — the form
// an SDN controller would consume it in.
//
//	apserver -net internet2 -scale 0.05 -listen :8080
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/query -d '{"ingress":"seattle","dst":"10.1.2.3"}'
//	curl -s -X POST localhost:8080/rules/add -d '{"box":"seattle","prefix":"240.0.0.0/8","port":-1}'
//	curl -s localhost:8080/verify/loops
//
// Observability (see README "Observability"):
//
//	curl -s localhost:8080/metrics        # Prometheus text exposition
//	curl -s localhost:8080/debug/trace?n=8 # last 8 per-query stage traces
//	go tool pprof localhost:8080/debug/pprof/profile
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/server"
)

func main() {
	netName := flag.String("net", "internet2", "dataset: internet2, stanford or multitenant")
	scale := flag.Float64("scale", 0.05, "rule-volume scale")
	seed := flag.Int64("seed", 1, "generator seed")
	load := flag.String("load", "", "load a dataset snapshot file instead of generating")
	listen := flag.String("listen", ":8080", "listen address")
	flag.Parse()

	var ds *netgen.Dataset
	var err error
	switch {
	case *load != "":
		f, ferr := os.Open(*load)
		if ferr != nil {
			fatal(ferr)
		}
		ds, err = netgen.Read(f)
		_ = f.Close() // read-only; parse errors are what matter
	case *netName == "internet2":
		ds = netgen.Internet2Like(netgen.Config{Seed: *seed, RuleScale: *scale})
	case *netName == "stanford":
		ds = netgen.StanfordLike(netgen.Config{Seed: *seed, RuleScale: *scale})
	case *netName == "multitenant":
		ds = netgen.MultiTenantLike(4, 3, *seed)
	default:
		err = fmt.Errorf("unknown network %q", *netName)
	}
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s compiled in %v: %d rules, %d predicates, %d atoms\n",
		ds.Name, time.Since(start).Round(time.Millisecond),
		ds.NumRules(), c.NumPredicates(), c.NumAtoms())
	fmt.Printf("listening on %s\n", *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           server.New(c).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fatal(srv.ListenAndServe())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "apserver:", err)
	os.Exit(1)
}
