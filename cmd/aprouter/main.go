// Command aprouter is the fan-out front door of a sharded apserver
// fleet (see README "Cluster mode" and DESIGN §12). It splits
// /query/batch by the header-space shard key, forwards with bounded
// per-shard concurrency and retry-on-next-epoch, merges answers back
// into input order, and replicates /rules/batch to every shard. The
// router holds no classifier state, so any number of replicas can
// front the same fleet.
//
//	apserver -net internet2 -shard 0/2 -listen :8081 &
//	apserver -net internet2 -shard 1/2 -listen :8082 &
//	aprouter -shards http://localhost:8081,http://localhost:8082 -listen :8080
//	curl -s -X POST localhost:8080/query -d '{"ingress":"seattle","dst":"10.1.2.3"}'
//	curl -s localhost:8080/healthz        # fleet readiness + seq/epoch skew
//	curl -s localhost:8080/metrics        # apc_router_* series
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"apclassifier/internal/cluster"
)

func main() {
	shards := flag.String("shards", "", "comma-separated worker base URLs; position k is shard k/N")
	mode := flag.String("shard-mode", "header", "partition function: header (5-tuple hash) or ingress (ingress-box hash); must match the workers")
	listen := flag.String("listen", ":8080", "listen address")
	concurrency := flag.Int("shard-concurrency", 4, "max in-flight sub-requests per shard")
	timeout := flag.Duration("timeout", 10*time.Second, "per-attempt forwarding timeout")
	retries := flag.Int("retries", 6, "retry budget per idempotent sub-request")
	flag.Parse()

	m, err := cluster.ParseMode(*mode)
	if err != nil {
		fatal(err)
	}
	var urls []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	router, err := cluster.NewRouter(cluster.Config{
		Shards:           urls,
		Mode:             m,
		ShardConcurrency: *concurrency,
		Timeout:          *timeout,
		Retries:          *retries,
	})
	if err != nil {
		fatal(err)
	}
	router.Start()
	defer router.Stop()

	fmt.Printf("routing %d shards (%s partition) on %s\n", len(urls), m, *listen)
	srv := &http.Server{
		Addr:              *listen,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case got := <-sig:
		fmt.Printf("\nreceived %s; draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		// The router is stateless; the grace period only lets in-flight
		// fan-outs finish.
		_ = srv.Shutdown(ctx)
		cancel()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aprouter:", err)
	os.Exit(1)
}
