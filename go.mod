module apclassifier

go 1.22
