package apclassifier

import (
	"testing"

	"apclassifier/internal/header"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

func TestNewRejectsInvalidDataset(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01})
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0, 0), Port: 999})
	if _, err := New(ds, Options{}); err == nil {
		t.Fatal("invalid dataset must be rejected")
	}
}

func TestNewRejectsLayoutWithoutDstIP(t *testing.T) {
	ds := &netgen.Dataset{
		Name:   "weird",
		Layout: header.NewLayout(header.Field{Name: "something", Width: 16}),
		Boxes:  []netgen.BoxSpec{{Name: "a", NumPorts: 1, PortACL: map[int]*rule.ACL{}}},
	}
	if _, err := New(ds, Options{}); err == nil {
		t.Fatal("layout without dstIP must be rejected")
	}
}

func TestTreeInputReflectsDeletes(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 17, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := len(c.TreeInput().Live)
	// Tombstone one live predicate via the manager.
	ids := c.Manager.LiveIDs()
	c.Manager.DeletePredicate(ids[0])
	after := len(c.TreeInput().Live)
	if after != before-1 {
		t.Fatalf("TreeInput live count %d -> %d, want -1", before, after)
	}
}

func TestEnvAccessor(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 18, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	env := c.Env()
	if env.Source == nil {
		t.Fatal("Env must be fully wired")
	}
	pkt := ds.PacketFromFields(rule.Fields{Dst: 0x0A000001})
	leaf, _ := env.Source.Classify(pkt)
	if leaf == nil || !leaf.IsLeaf() {
		t.Fatal("Env.Classify broken")
	}
}

func TestBehaviorWithWalkerMatchesPlain(t *testing.T) {
	ds := netgen.StanfordLike(netgen.Config{Seed: 19, RuleScale: 0.003})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := c.NewWalker()
	for i := 0; i < 100; i++ {
		f := rule.Fields{Dst: 0x0A000000 | uint32(i)<<8, Src: uint32(i) * 777}
		pkt := ds.PacketFromFields(f)
		a := c.Behavior(i%len(ds.Boxes), pkt)
		b := c.BehaviorWith(w, i%len(ds.Boxes), pkt)
		if a.String() != b.String() {
			t.Fatalf("walker and plain behavior differ: %q vs %q", a.String(), b.String())
		}
	}
}
