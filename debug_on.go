//go:build apdebug

package apclassifier

import (
	"fmt"

	"apclassifier/internal/aptree"
	"apclassifier/internal/network"
)

// debugCheckCacheEpoch panics when a query pinned to snapshot s is about
// to consult a behavior cache built for a different epoch. Cached
// behaviors are only valid for the atoms of the epoch they were walked
// under — serving one across epochs would silently return stale paths.
// cacheFor upholds this by construction (pointer-identity keying); the
// apdebug build re-checks it at the single point of use.
func debugCheckCacheEpoch(bc *network.BehaviorCache, s *aptree.Snapshot) {
	if bc != nil && bc.Epoch() != s {
		panic(fmt.Sprintf("apdebug: behavior cache for epoch %p consulted by a query pinned to epoch %p",
			bc.Epoch(), s))
	}
}
