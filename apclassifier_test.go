package apclassifier

import (
	"math/rand"
	"sort"
	"testing"

	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// behaviorMatchesOracle compares the two-stage AP Classifier pipeline with
// the direct rule-table simulator on random traffic — the end-to-end
// correctness property of the whole system.
func behaviorMatchesOracle(t *testing.T, ds *netgen.Dataset, probes int, seed int64) {
	t.Helper()
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	delivered := 0
	for i := 0; i < probes; i++ {
		f := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		pkt := ds.PacketFromFields(f)

		want := ds.Simulate(ingress, f)
		got := c.Behavior(ingress, pkt)

		wd := append([]string(nil), want.Delivered...)
		var gd []string
		for _, d := range got.Deliveries {
			gd = append(gd, d.Host)
		}
		sort.Strings(wd)
		sort.Strings(gd)
		if len(wd) != len(gd) {
			t.Fatalf("probe %d (%+v from box %d): delivered %v, oracle %v\nbehavior: %v",
				i, f, ingress, gd, wd, got)
		}
		for j := range wd {
			if wd[j] != gd[j] {
				t.Fatalf("probe %d: delivered %v, oracle %v", i, gd, wd)
			}
		}
		if len(wd) > 0 {
			delivered++
		}
		// Drop boxes must match as sets too.
		wantDrops := map[int]bool{}
		for _, b := range want.DropBoxes {
			wantDrops[b] = true
		}
		gotDrops := map[int]bool{}
		for _, d := range got.Drops {
			gotDrops[d.Box] = true
		}
		if len(wantDrops) != len(gotDrops) {
			t.Fatalf("probe %d: drop boxes %v vs oracle %v (%v)", i, gotDrops, wantDrops, got)
		}
		for b := range wantDrops {
			if !gotDrops[b] {
				t.Fatalf("probe %d: oracle drops at %d, classifier does not", i, b)
			}
		}
	}
	if delivered == 0 {
		t.Fatal("test traffic never delivered — not exercising forwarding")
	}
}

func TestEndToEndInternet2(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 5, RuleScale: 0.02})
	behaviorMatchesOracle(t, ds, 800, 5)
}

func TestEndToEndStanford(t *testing.T) {
	ds := netgen.StanfordLike(netgen.Config{Seed: 6, RuleScale: 0.005})
	behaviorMatchesOracle(t, ds, 400, 6)
}

func TestEndToEndSurvivesReconstruction(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 8, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	check := func() {
		for i := 0; i < 150; i++ {
			f := ds.RandomFields(rng)
			ingress := rng.Intn(len(ds.Boxes))
			want := ds.Simulate(ingress, f)
			got := c.Behavior(ingress, ds.PacketFromFields(f))
			if (len(want.Delivered) > 0) != got.Delivered("") {
				t.Fatalf("delivery mismatch after reconstruct: %+v", f)
			}
		}
	}
	check()
	c.Reconstruct(false)
	check()
	c.Reconstruct(true)
	check()
}

func TestRuleLevelUpdates(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 9, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))

	// Install a brand-new, previously unrouted prefix on every box toward
	// a chosen edge port, then verify delivery follows the rules.
	target := ds.Hosts[rng.Intn(len(ds.Hosts))]
	newPrefix := rule.P(0xF0000000, 12) // 240/12 is outside generator bases
	for b := range ds.Boxes {
		if b == target.Box {
			c.AddFwdRule(b, rule.FwdRule{Prefix: newPrefix, Port: target.Port})
		}
	}
	// Boxes other than target have no route to 240/12, so inject a route
	// via the topology: simplest correctness check is from the target box.
	f := rule.Fields{Dst: 0xF0000001}
	want := ds.Simulate(target.Box, f)
	got := c.Behavior(target.Box, ds.PacketFromFields(f))
	if len(want.Delivered) != 1 || want.Delivered[0] != target.Name {
		t.Fatalf("oracle sanity: %+v", want)
	}
	if !got.Delivered(target.Name) {
		t.Fatalf("classifier missed the new rule: %v", got)
	}

	// Remove it again: the packet must now drop, per both oracle and
	// classifier.
	if !c.RemoveFwdRule(target.Box, newPrefix) {
		t.Fatal("RemoveFwdRule reported nothing removed")
	}
	want = ds.Simulate(target.Box, f)
	got = c.Behavior(target.Box, ds.PacketFromFields(f))
	if len(want.Delivered) != 0 || got.Delivered("") {
		t.Fatalf("rule removal not reflected: oracle %v classifier %v", want, got)
	}

	// Broad consistency sweep after the churn.
	for i := 0; i < 200; i++ {
		fl := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		w := ds.Simulate(ingress, fl)
		g := c.Behavior(ingress, ds.PacketFromFields(fl))
		if (len(w.Delivered) > 0) != g.Delivered("") {
			t.Fatalf("sweep %d: delivery mismatch for %+v", i, fl)
		}
	}
}

func TestACLLevelUpdates(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 12, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))

	// Find a delivered flow and its delivery port.
	var f rule.Fields
	var dbox, dport int
	for {
		f = ds.RandomFields(rng)
		b := c.Behavior(0, ds.PacketFromFields(f))
		if len(b.Deliveries) == 1 {
			dbox, dport = b.Deliveries[0].Box, b.Deliveries[0].Port
			break
		}
	}

	// Installing a deny-all egress ACL on the delivery port must drop it
	// (both per classifier and per oracle).
	denyAll := &rule.ACL{Default: rule.Deny}
	c.SetPortACL(dbox, dport, denyAll)
	if c.Behavior(0, ds.PacketFromFields(f)).Delivered("") {
		t.Fatal("deny-all egress ACL not applied")
	}
	if got := ds.Simulate(0, f); len(got.Delivered) != 0 {
		t.Fatal("dataset not updated alongside")
	}

	// Replace with a permit-all ACL: flow restored.
	c.SetPortACL(dbox, dport, &rule.ACL{Default: rule.Permit})
	if !c.Behavior(0, ds.PacketFromFields(f)).Delivered("") {
		t.Fatal("permit-all egress ACL should restore delivery")
	}

	// Remove entirely: still delivered.
	c.SetPortACL(dbox, dport, nil)
	if !c.Behavior(0, ds.PacketFromFields(f)).Delivered("") {
		t.Fatal("removing the ACL should keep delivery")
	}

	// Ingress ACL on the ingress box drops everything entering there.
	c.SetInACL(0, denyAll)
	b := c.Behavior(0, ds.PacketFromFields(f))
	if b.Delivered("") {
		t.Fatal("deny-all ingress ACL not applied")
	}
	c.SetInACL(0, nil)
	if !c.Behavior(0, ds.PacketFromFields(f)).Delivered("") {
		t.Fatal("removing ingress ACL should restore delivery")
	}

	// After the churn, a reconstruction keeps everything consistent.
	c.Reconstruct(false)
	for i := 0; i < 200; i++ {
		fl := ds.RandomFields(rng)
		ing := rng.Intn(len(ds.Boxes))
		w := ds.Simulate(ing, fl)
		g := c.Behavior(ing, ds.PacketFromFields(fl))
		if (len(w.Delivered) > 0) != g.Delivered("") {
			t.Fatalf("sweep %d: mismatch after ACL churn + reconstruct", i)
		}
	}
}

func TestStatsAccessors(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 10, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumPredicates() == 0 || c.NumAtoms() == 0 {
		t.Fatal("stats must be positive")
	}
	if c.AverageDepth() <= 0 {
		t.Fatal("average depth must be positive")
	}
	if c.MemBytes() <= 0 {
		t.Fatal("memory estimate must be positive")
	}
	if c.NumAtoms() > 1<<uint(16) {
		t.Fatal("atom explosion")
	}
}

func TestNewRejectsRandomMethod(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01})
	if _, err := New(ds, Options{Method: MethodRandom}); err == nil {
		t.Fatal("MethodRandom must be rejected")
	}
}
