package apclassifier

import (
	"math/rand"
	"sort"
	"testing"

	"apclassifier/internal/checkpoint"
	"apclassifier/internal/rule"
)

// sortedIDs copies and sorts a predicate-ID slice for set comparison.
func sortedIDs(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestCheckpointRestoreMatchesLive is the warm-restart differential
// satellite: on every netgen dataset it mutates a live classifier (so
// the checkpoint carries tombstones and post-build predicates), saves
// it through the managed directory, restores a second classifier from
// disk, and checks the two are behaviorally indistinguishable on
// boundary and random headers — same leaf atom, same membership bits,
// and an identical Behavior walk (deliveries, drops, rewrites). It then
// applies the same mutation to both and re-compares, proving the
// restored instance is a full peer, not a read-only replica.
func TestCheckpointRestoreMatchesLive(t *testing.T) {
	for name, ds := range diffDatasets() {
		t.Run(name, func(t *testing.T) {
			c, err := New(ds, Options{})
			if err != nil {
				t.Fatal(err)
			}

			// Age the classifier: rule updates tombstone predicates and
			// add new ones, a reconstruction swaps the tree. The
			// checkpoint must capture this post-update epoch, not the
			// cold-build state.
			c.AddFwdRule(0, rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 0})
			for b := range ds.Boxes {
				if len(ds.Boxes[b].Fwd.Rules) > 0 {
					c.RemoveFwdRule(b, ds.Boxes[b].Fwd.Rules[0].Prefix)
					break
				}
			}
			deny := rule.MatchAll()
			deny.Dst = rule.P(0x80000000, 1)
			c.SetInACL(len(ds.Boxes)-1, &rule.ACL{
				Rules:   []rule.ACLRule{{Match: deny, Action: rule.Deny}},
				Default: rule.Permit,
			})
			c.Reconstruct(false)

			dir, err := checkpoint.Open(t.TempDir(), 2)
			if err != nil {
				t.Fatal(err)
			}
			path, err := dir.Save(c.CheckpointSource())
			if err != nil {
				t.Fatal(err)
			}
			rc, err := RestoreDir(dir)
			if err != nil {
				t.Fatal(err)
			}

			if rc.Manager.Version() != c.Manager.Version() {
				t.Fatalf("restored epoch %d, live %d", rc.Manager.Version(), c.Manager.Version())
			}
			if rc.NumPredicates() != c.NumPredicates() || rc.NumAtoms() != c.NumAtoms() {
				t.Fatalf("restored %d preds / %d atoms, live %d / %d",
					rc.NumPredicates(), rc.NumAtoms(), c.NumPredicates(), c.NumAtoms())
			}
			liveIDs := c.Manager.LiveIDs()
			if got, want := sortedIDs(rc.Manager.LiveIDs()), sortedIDs(liveIDs); len(got) != len(want) {
				t.Fatalf("live ID sets differ in size: %d vs %d", len(got), len(want))
			} else {
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("live ID sets differ: %v vs %v", got, want)
					}
				}
			}

			rng := rand.New(rand.NewSource(45))
			probes := boundaryFields(ds, rng, 3)
			for i := 0; i < 150; i++ {
				probes = append(probes, ds.RandomFields(rng))
			}
			compare := func(probes []rule.Fields, phase string) {
				t.Helper()
				for i, f := range probes {
					pkt := ds.PacketFromFields(f)
					ll := c.Classify(pkt)
					lr := rc.Classify(pkt)
					if ll.AtomID != lr.AtomID {
						t.Fatalf("%s probe %d: live atom %d, restored atom %d", phase, i, ll.AtomID, lr.AtomID)
					}
					for _, id := range liveIDs {
						if ll.Member.Get(int(id)) != lr.Member.Get(int(id)) {
							t.Fatalf("%s probe %d: membership bit %d differs after restore", phase, i, id)
						}
					}
					ingress := rng.Intn(len(ds.Boxes))
					bl := c.Behavior(ingress, pkt)
					br := rc.Behavior(ingress, pkt)
					if bl.String() != br.String() {
						t.Fatalf("%s probe %d from box %d:\n live     %s\n restored %s",
							phase, i, ingress, bl, br)
					}
				}
			}
			compare(probes, "restore")

			// The restored classifier must keep evolving in lockstep when
			// fed the same updates: a forwarding-rule change (exercising
			// the round-tripped rule tables) and a fresh ingress ACL.
			fr := rule.FwdRule{Prefix: rule.P(0xC0A80000, 16), Port: 0}
			c.AddFwdRule(0, fr)
			rc.AddFwdRule(0, fr)
			deny2 := rule.MatchAll()
			deny2.Dst = rule.P(0xC0000000, 2)
			acl := &rule.ACL{Rules: []rule.ACLRule{{Match: deny2, Action: rule.Deny}}, Default: rule.Permit}
			c.SetInACL(0, acl)
			rc.SetInACL(0, acl)
			liveIDs = c.Manager.LiveIDs()
			compare(probes[:40], "post-update")

			// The facade's single-file path restores the same state.
			rc2, err := RestoreFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if rc2.NumPredicates() == 0 || rc2.NumAtoms() == 0 {
				t.Fatal("RestoreFile produced an empty classifier")
			}
		})
	}
}

// TestCheckpointResumesDeltaSeq is the firehose-idempotency satellite: the
// rule-delta sequence cursor rides in the checkpoint META, so a restored
// classifier keeps acknowledging (without re-applying) sequenced batches
// that were delivered before the save.
func TestCheckpointResumesDeltaSeq(t *testing.T) {
	ds := diffDatasets()["internet2"]
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	add := []RuleDelta{{Op: OpAddFwdRule, Box: 0, Rule: rule.FwdRule{Prefix: rule.P(0xF0000000, 8), Port: 0}}}
	if applied, err := c.ApplyRuleDeltasSeq(9, add); err != nil || !applied {
		t.Fatalf("seq 9: applied=%v err=%v", applied, err)
	}

	dir, err := checkpoint.Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dir.Save(c.CheckpointSource()); err != nil {
		t.Fatal(err)
	}
	rc, err := RestoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rc.DeltaSeq() != 9 {
		t.Fatalf("restored cursor %d, want 9", rc.DeltaSeq())
	}
	// Redelivery of an already-applied batch must be acknowledged only.
	if applied, err := rc.ApplyRuleDeltasSeq(9, add); err != nil || applied {
		t.Fatalf("replayed seq 9: applied=%v err=%v", applied, err)
	}
	// The next sequence number applies and advances the cursor.
	rm := []RuleDelta{{Op: OpRemoveFwdRule, Box: 0, Prefix: rule.P(0xF0000000, 8)}}
	if applied, err := rc.ApplyRuleDeltasSeq(10, rm); err != nil || !applied {
		t.Fatalf("seq 10: applied=%v err=%v", applied, err)
	}
	if rc.DeltaSeq() != 10 {
		t.Fatalf("cursor %d after seq 10, want 10", rc.DeltaSeq())
	}
}
