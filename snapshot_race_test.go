package apclassifier

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// TestBehaviorUnderManagerChurn hammers the lock-free query path of the
// facade — Behavior, BehaviorWith and pinned Snapshot queries — while the
// manager absorbs predicate adds, deletes, explicit reconstructions and
// the auto-reconstruction policy. The churn is manager-level only (no
// topology rewiring), so every query must keep returning the pre-churn
// behavior: the extra predicates change the atom partition, never the
// network semantics. Run under -race this is the facade-level witness
// that queries touch no mutex yet stay coherent.
func TestBehaviorUnderManagerChurn(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 21, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	numVars := ds.Layout.Bits()

	type query struct {
		ingress int
		pkt     []byte
		want    string
	}
	rng := rand.New(rand.NewSource(41))
	queries := make([]query, 32)
	for i := range queries {
		f := rule.Fields{Dst: 0x0A000000 | uint32(rng.Intn(1<<16))}
		q := query{ingress: rng.Intn(len(ds.Boxes)), pkt: ds.PacketFromFields(f)}
		q.want = c.Behavior(q.ingress, q.pkt).String()
		queries[i] = q
	}

	stop := c.Manager.AutoReconstruct(6, time.Millisecond, true)
	defer stop()

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Writer: churn the predicate set through the manager. The added
	// predicates belong to no box, so deleting them again is always safe.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		wrng := rand.New(rand.NewSource(43))
		var ids []int32
		for i := 0; i < 40; i++ {
			if len(ids) > 3 && wrng.Intn(3) == 0 {
				k := wrng.Intn(len(ids))
				c.Manager.DeletePredicate(ids[k])
				ids = append(ids[:k], ids[k+1:]...)
			} else {
				bits := uint64(wrng.Uint32())
				id := c.Manager.AddPredicate(func(d *bdd.DD) bdd.Ref {
					return d.FromPrefix(0, bits>>8, 8+wrng.Intn(17), numVars)
				})
				ids = append(ids, id)
			}
			if i%9 == 0 {
				c.Reconstruct(i%18 == 0)
			}
		}
	}()

	// Batch reader: whole batches interleave with the updates and swaps;
	// each batch pins one epoch, so its answers must stay coherent even
	// when the behavior cache is replaced mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := c.NewBatchBuffer()
		pkts := make([][]byte, len(queries))
		ingress := make([]int, len(queries))
		for i, q := range queries {
			pkts[i] = q.pkt
			ingress[i] = q.ingress
		}
		for i := 0; i < 400; i++ {
			for k, b := range c.BehaviorBatch(buf, ingress, pkts) {
				if got := b.String(); got != queries[k].want {
					t.Errorf("BehaviorBatch drifted under churn:\n got %q\nwant %q", got, queries[k].want)
					return
				}
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			w := c.NewWalker()
			qrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				q := queries[qrng.Intn(len(queries))]
				if got := c.Behavior(q.ingress, q.pkt).String(); got != q.want {
					t.Errorf("Behavior drifted under churn:\n got %q\nwant %q", got, q.want)
					return
				}
				if got := c.BehaviorWith(w, q.ingress, q.pkt).String(); got != q.want {
					t.Errorf("BehaviorWith drifted under churn:\n got %q\nwant %q", got, q.want)
					return
				}
				// A pinned snapshot must answer consistently for a whole
				// batch even if the epoch is swapped mid-batch.
				s := c.Snapshot()
				v := s.Version()
				for k := 0; k < 4; k++ {
					b := queries[(i+k)%len(queries)]
					if got := s.Behavior(b.ingress, b.pkt).String(); got != b.want {
						t.Errorf("snapshot Behavior drifted under churn:\n got %q\nwant %q", got, b.want)
						return
					}
				}
				if s.Version() != v {
					t.Error("snapshot version changed under the caller")
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(int64(50 + r))
	}
	wg.Wait()
}
