package apclassifier

import (
	"fmt"
	"sort"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/network"
	"apclassifier/internal/predicate"
	"apclassifier/internal/rule"
)

// RuleDeltaOp enumerates the data-plane mutations a RuleDelta can carry.
type RuleDeltaOp int

// Rule-delta operations.
const (
	// OpAddFwdRule installs Rule into Box's forwarding table.
	OpAddFwdRule RuleDeltaOp = iota
	// OpRemoveFwdRule removes all rules matching Prefix exactly from Box's
	// forwarding table; removing an absent prefix is a no-op.
	OpRemoveFwdRule
	// OpSetPortACL installs (or with a nil ACL removes) the egress ACL of
	// Box's Port.
	OpSetPortACL
	// OpSetInACL installs (or with a nil ACL removes) Box's ingress ACL.
	OpSetInACL
)

func (op RuleDeltaOp) String() string {
	switch op {
	case OpAddFwdRule:
		return "add-fwd"
	case OpRemoveFwdRule:
		return "remove-fwd"
	case OpSetPortACL:
		return "set-port-acl"
	case OpSetInACL:
		return "set-in-acl"
	}
	return fmt.Sprintf("RuleDeltaOp(%d)", int(op))
}

// RuleDelta is one data-plane mutation of a batched update transaction.
// Which fields are meaningful depends on Op; see the op constants.
type RuleDelta struct {
	Op     RuleDeltaOp
	Box    int
	Rule   rule.FwdRule // OpAddFwdRule
	Prefix rule.Prefix  // OpRemoveFwdRule
	Port   int          // OpSetPortACL
	ACL    *rule.ACL    // OpSetPortACL / OpSetInACL; nil clears
}

// validateDelta rejects a delta that names a box or port outside the
// dataset, before anything is mutated.
func (c *Classifier) validateDelta(dl RuleDelta) error {
	if dl.Box < 0 || dl.Box >= len(c.Dataset.Boxes) {
		return fmt.Errorf("unknown box %d", dl.Box)
	}
	spec := &c.Dataset.Boxes[dl.Box]
	switch dl.Op {
	case OpAddFwdRule:
		if dl.Rule.Port != rule.Drop && (dl.Rule.Port < 0 || dl.Rule.Port >= spec.NumPorts) {
			return fmt.Errorf("rule port %d out of range [0,%d)", dl.Rule.Port, spec.NumPorts)
		}
	case OpRemoveFwdRule:
	case OpSetPortACL:
		if dl.Port < 0 || dl.Port >= spec.NumPorts {
			return fmt.Errorf("port %d out of range [0,%d)", dl.Port, spec.NumPorts)
		}
	case OpSetInACL:
	default:
		return fmt.Errorf("unknown op %d", int(dl.Op))
	}
	return nil
}

// ApplyRuleDeltas applies a batch of data-plane mutations as one update
// transaction — the delta pipeline behind AddFwdRule, RemoveFwdRule,
// SetPortACL, SetInACL and the server's /rules/batch firehose.
//
// The whole batch is validated before anything is touched; an error means
// no mutation happened. The forwarding-table mutations report their LPM
// cones (rule.Cone), so only the port predicates whose covering set
// actually changed are recomputed — and only inside the cone regions
// (predicate.DeltaPortPredicates). Each changed predicate is swapped in the
// registry and the live tree by the atom-merge/split delta path (Tx.Remove
// + Tx.Add), and the topology is rewired, all under a single
// Manager.Update: queries observe either the pre-batch or the post-batch
// epoch, never an intermediate state. Like the individual mutators, callers
// must externally synchronize with each other (the server holds its write
// lock); queries need no synchronization.
func (c *Classifier) ApplyRuleDeltas(deltas []RuleDelta) error {
	for i, dl := range deltas {
		if err := c.validateDelta(dl); err != nil {
			return fmt.Errorf("apclassifier: delta %d: %w", i, err)
		}
	}

	// Mutate the dataset first, collecting per-box LPM cones. The cones
	// are exact against the final table: DeltaPortPredicates recomputes
	// winners inside the union of regions from the post-batch table, and
	// nothing outside the union changed.
	cones := make(map[int][]rule.Cone)
	type aclOp struct {
		box, port int // port == -1 for box ingress ACLs
		acl       *rule.ACL
	}
	var aclOps []aclOp
	for _, dl := range deltas {
		spec := &c.Dataset.Boxes[dl.Box]
		switch dl.Op {
		case OpAddFwdRule:
			cones[dl.Box] = append(cones[dl.Box], spec.Fwd.AddWithCone(dl.Rule))
		case OpRemoveFwdRule:
			if cone, ok := spec.Fwd.RemoveWithCone(dl.Prefix); ok {
				cones[dl.Box] = append(cones[dl.Box], cone)
			}
		case OpSetPortACL:
			if dl.ACL == nil {
				delete(spec.PortACL, dl.Port)
			} else {
				spec.PortACL[dl.Port] = dl.ACL
			}
			aclOps = append(aclOps, aclOp{dl.Box, dl.Port, dl.ACL})
		case OpSetInACL:
			spec.InACL = dl.ACL
			aclOps = append(aclOps, aclOp{dl.Box, -1, dl.ACL})
		}
	}
	if len(cones) == 0 && len(aclOps) == 0 {
		return nil
	}

	boxes := make([]int, 0, len(cones))
	for box := range cones {
		boxes = append(boxes, box)
	}
	sort.Ints(boxes)

	c.Manager.Update(func(tx *aptree.Tx) {
		for _, box := range boxes {
			spec := &c.Dataset.Boxes[box]
			pd := predicate.DeltaPortPredicates(tx.DD(), c.Layout, "dstIP", &spec.Fwd,
				cones[box], spec.NumPorts, func(port int) bdd.Ref {
					if id := c.PortPred[box][port]; id != network.NoPred {
						return tx.Ref(id)
					}
					return bdd.False
				})
			for _, dp := range pd {
				if oldID := c.PortPred[box][dp.Port]; oldID != network.NoPred {
					tx.Remove(oldID)
				}
				newID := network.NoPred
				if dp.New != bdd.False {
					newID = tx.Add(dp.New)
				}
				c.PortPred[box][dp.Port] = newID
				c.Net.Boxes[box].Ports[dp.Port].Fwd = newID
			}
		}
		for _, op := range aclOps {
			var slot *int32
			if op.port < 0 {
				slot = &c.Net.Boxes[op.box].InACL
			} else {
				slot = &c.Net.Boxes[op.box].Ports[op.port].OutACL
			}
			newRef := bdd.False
			if op.acl != nil {
				newRef = predicate.ACLPredicate(tx.DD(), c.Layout, op.acl)
			}
			if old := *slot; old != network.NoPred {
				if op.acl != nil && tx.Ref(old) == newRef {
					continue // identical predicate: no structural change
				}
				tx.Remove(old)
			}
			id := network.NoPred
			if op.acl != nil {
				id = tx.Add(newRef)
			}
			*slot = id
		}
	})
	return nil
}

// ApplyRuleDeltasSeq is ApplyRuleDeltas for a sequenced firehose: batches
// carry monotonically increasing sequence numbers, and a batch whose seq is
// at or below the last applied one is acknowledged without being applied
// (applied == false), making redelivery after a reconnect or a warm restart
// idempotent. seq 0 means unsequenced and always applies. The cursor is
// recorded in checkpoints (see CheckpointSource), so a restored classifier
// resumes rejecting already-applied deltas.
func (c *Classifier) ApplyRuleDeltasSeq(seq uint64, deltas []RuleDelta) (applied bool, err error) {
	if seq != 0 && seq <= c.deltaSeq.Load() {
		return false, nil
	}
	if err := c.ApplyRuleDeltas(deltas); err != nil {
		return false, err
	}
	if seq != 0 {
		c.deltaSeq.Store(seq)
	}
	return true, nil
}

// DeltaSeq reports the sequence number of the last applied sequenced
// rule-delta batch (0 if none).
func (c *Classifier) DeltaSeq() uint64 { return c.deltaSeq.Load() }
