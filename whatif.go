package apclassifier

import (
	"apclassifier/internal/network"
	"apclassifier/internal/rule"
)

// FlowProbe names one flow whose behavior a what-if check observes.
type FlowProbe struct {
	Ingress int
	Fields  rule.Fields
}

// BehaviorChange records how one probed flow's behavior differs between
// the current data plane and the hypothetical one.
type BehaviorChange struct {
	Probe          FlowProbe
	Before, After  *network.Behavior
	DeliveryChange bool // delivered-host set differs
	PathChange     bool // traversed-edge set differs
}

// WhatIfFwdRule answers §I's pre-installation verification question: if
// this forwarding rule were installed on the box, how would the probed
// flows behave? The rule is applied to the live classifier (a real-time
// tree update), the probes are evaluated, and the rule is rolled back, so
// the data plane state is unchanged on return.
//
// Like the other rule-level operations, the caller must synchronize with
// concurrent queries.
func (c *Classifier) WhatIfFwdRule(box int, r rule.FwdRule, probes []FlowProbe) []BehaviorChange {
	before := make([]*network.Behavior, len(probes))
	for i, p := range probes {
		before[i] = c.Behavior(p.Ingress, c.Dataset.PacketFromFields(p.Fields))
	}
	// Displace any existing rules with the same prefix (the hypothetical
	// rule must win the LPM tie) and restore them afterwards.
	var displaced []rule.FwdRule
	for _, er := range c.Dataset.Boxes[box].Fwd.Rules {
		if er.Prefix == r.Prefix {
			displaced = append(displaced, er)
		}
	}
	if len(displaced) > 0 {
		c.RemoveFwdRule(box, r.Prefix)
	}
	c.AddFwdRule(box, r)

	changes := make([]BehaviorChange, 0, len(probes))
	for i, p := range probes {
		after := c.Behavior(p.Ingress, c.Dataset.PacketFromFields(p.Fields))
		ch := BehaviorChange{Probe: p, Before: before[i], After: after}
		ch.DeliveryChange = !sameDeliveries(before[i], after)
		ch.PathChange = !sameEdges(before[i], after)
		if ch.DeliveryChange || ch.PathChange {
			changes = append(changes, ch)
		}
	}

	c.RemoveFwdRule(box, r.Prefix)
	for _, er := range displaced {
		c.AddFwdRule(box, er)
	}
	return changes
}

func sameDeliveries(a, b *network.Behavior) bool {
	if len(a.Deliveries) != len(b.Deliveries) {
		return false
	}
	count := map[string]int{}
	for _, d := range a.Deliveries {
		count[d.Host]++
	}
	for _, d := range b.Deliveries {
		count[d.Host]--
		if count[d.Host] < 0 {
			return false
		}
	}
	return true
}

func sameEdges(a, b *network.Behavior) bool {
	if len(a.Edges) != len(b.Edges) {
		return false
	}
	type ek struct {
		box, port int
	}
	count := map[ek]int{}
	for _, e := range a.Edges {
		count[ek{e.Box, e.Port}]++
	}
	for _, e := range b.Edges {
		count[ek{e.Box, e.Port}]--
		if count[ek{e.Box, e.Port}] < 0 {
			return false
		}
	}
	return true
}
