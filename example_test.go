package apclassifier_test

import (
	"fmt"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// ExampleNew compiles a tiny hand-built network and identifies a packet's
// network-wide behavior.
func ExampleNew() {
	// Two boxes: a --- b, with hosts h1 (on a) and h2 (on b).
	ds := &netgen.Dataset{Name: "tiny", Layout: netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01}).Layout}
	ds.Boxes = []netgen.BoxSpec{
		{Name: "a", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
		{Name: "b", NumPorts: 2, PortACL: map[int]*rule.ACL{}},
	}
	ds.Links = []netgen.Link{{A: 0, PA: 1, B: 1, PB: 1}}
	ds.Hosts = []netgen.Host{{Box: 0, Port: 0, Name: "h1"}, {Box: 1, Port: 0, Name: "h2"}}
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 0}) // 10/8 -> h1
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x14000000, 8), Port: 1}) // 20/8 -> b
	ds.Boxes[1].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x14000000, 8), Port: 0}) // 20/8 -> h2

	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		panic(err)
	}
	pkt := ds.PacketFromFields(rule.Fields{Dst: 0x14000001}) // 20.0.0.1
	b := c.Behavior(0, pkt)
	fmt.Println("delivered to h2:", b.Delivered("h2"))
	fmt.Println("atoms:", c.NumAtoms())
	// Output:
	// delivered to h2: true
	// atoms: 3
}

// ExampleClassifier_WhatIfFwdRule previews a rule installation without
// committing it.
func ExampleClassifier_WhatIfFwdRule() {
	ds := &netgen.Dataset{Name: "tiny", Layout: netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.01}).Layout}
	ds.Boxes = []netgen.BoxSpec{{Name: "a", NumPorts: 1, PortACL: map[int]*rule.ACL{}}}
	ds.Hosts = []netgen.Host{{Box: 0, Port: 0, Name: "h1"}}
	ds.Boxes[0].Fwd.Add(rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: 0})

	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		panic(err)
	}
	probe := apclassifier.FlowProbe{Ingress: 0, Fields: rule.Fields{Dst: 0x0A000001}}
	// What if we blackholed 10.0.0.1/32?
	changes := c.WhatIfFwdRule(0, rule.FwdRule{Prefix: rule.P(0x0A000001, 32), Port: rule.Drop},
		[]apclassifier.FlowProbe{probe})
	fmt.Println("flows affected:", len(changes))
	fmt.Println("still delivered after rollback:", c.Behavior(0, ds.PacketFromFields(probe.Fields)).Delivered("h1"))
	// Output:
	// flows affected: 1
	// still delivered after rollback: true
}
