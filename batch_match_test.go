package apclassifier

import (
	"math/rand"
	"sync"
	"testing"

	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
	"apclassifier/internal/rule"
)

// TestBatchMatchesSingle is the batch differential satellite: on every
// netgen dataset, BehaviorBatch over random and boundary headers must be
// element-wise identical to the per-packet path — same atom, same
// behavior — at every batch size, including batches full of duplicate
// headers (the case the pipeline collapses).
func TestBatchMatchesSingle(t *testing.T) {
	for name, ds := range diffDatasets() {
		t.Run(name, func(t *testing.T) {
			c, err := New(ds, Options{})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(45))
			fields := boundaryFields(ds, rng, 2)
			for i := 0; i < 120; i++ {
				fields = append(fields, ds.RandomFields(rng))
			}
			pkts := make([][]byte, 0, len(fields)*4/3)
			ingress := make([]int, 0, cap(pkts))
			for i, f := range fields {
				pkts = append(pkts, ds.PacketFromFields(f))
				ingress = append(ingress, rng.Intn(len(ds.Boxes)))
				if i%3 == 0 {
					// Duplicate (header, ingress) pairs exercise both the
					// stage-1 collapse and the stage-2 intra-batch dedupe.
					pkts = append(pkts, pkts[len(pkts)-1])
					ingress = append(ingress, ingress[len(ingress)-1])
				}
			}
			wantAtom := make([]int32, len(pkts))
			want := make([]string, len(pkts))
			for i := range pkts {
				leaf := c.Classify(pkts[i])
				wantAtom[i] = leaf.AtomID
				want[i] = c.Behavior(ingress[i], pkts[i]).String()
			}

			buf := c.NewBatchBuffer()
			for _, size := range []int{1, 7, 64, len(pkts)} {
				for lo := 0; lo < len(pkts); lo += size {
					hi := min(lo+size, len(pkts))
					s := c.Snapshot()
					leaves := s.ClassifyBatch(buf, pkts[lo:hi])
					for i, leaf := range leaves {
						if leaf.AtomID != wantAtom[lo+i] {
							t.Fatalf("size %d, packet %d: batch atom %d, single atom %d",
								size, lo+i, leaf.AtomID, wantAtom[lo+i])
						}
					}
					got := s.BehaviorBatchFrom(buf, ingress[lo:hi], pkts[lo:hi], leaves)
					for i, b := range got {
						if b.String() != want[lo+i] {
							t.Fatalf("size %d, packet %d:\n batch %q\nsingle %q",
								size, lo+i, b.String(), want[lo+i])
						}
					}
				}
			}
		})
	}
}

// TestBatchBypassesCacheForPayloadMiddlebox proves the §V-E gate: two
// same-atom packets crossing a Type-2 (payload-dependent) middlebox get
// genuinely different behaviors, and the batch pipeline must not share
// one cached walk between them — neither through the epoch cache nor
// through its own intra-batch dedupe.
func TestBatchBypassesCacheForPayloadMiddlebox(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 46, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Internet2 prefixes are /10–/24, so two destinations differing only
	// in the low bit always share an atom.
	base := ds.Boxes[0].Fwd.Rules[0].Prefix.Value
	even := ds.PacketFromFields(ruleFieldsDst(base | 2))
	odd := ds.PacketFromFields(ruleFieldsDst(base | 3))
	if a, b := c.Classify(even), c.Classify(odd); a.AtomID != b.AtomID {
		t.Fatalf("probe construction broken: atoms %d vs %d", a.AtomID, b.AtomID)
	}

	match := c.Manager.AddPredicate(func(d *bdd.DD) bdd.Ref { return bdd.True })
	layout := ds.Layout
	c.Net.Boxes[0].MB = &network.Middlebox{
		Name: "payload-mb",
		Entries: []network.MBEntry{{
			Match: match,
			Type:  network.MBPayload,
			Rewrite: func(pkt []byte) [][]byte {
				if layout.Get(pkt, "dstIP")&1 == 0 {
					return [][]byte{} // "payload" says drop
				}
				return nil // pass through
			},
		}},
	}
	defer func() { c.Net.Boxes[0].MB = nil }()

	wantEven := c.Behavior(0, even).String()
	wantOdd := c.Behavior(0, odd).String()
	if wantEven == wantOdd {
		t.Fatal("probes must behave differently through the Type-2 middlebox")
	}
	if c.Behavior(0, even).Deterministic() {
		t.Fatal("Type-2 walk must be non-deterministic")
	}

	// Interleave the two classes; wrong memoization on the shared
	// (ingress, atom) key would answer one class with the other's walk.
	pkts := [][]byte{even, odd, even, odd, even, odd}
	ingress := []int{0, 0, 0, 0, 0, 0}
	buf := c.NewBatchBuffer()
	for round := 0; round < 2; round++ { // round 2 re-tests against a warm cache
		got := c.BehaviorBatch(buf, ingress, pkts)
		for i, b := range got {
			want := wantEven
			if i%2 == 1 {
				want = wantOdd
			}
			if b.String() != want {
				t.Fatalf("round %d, packet %d:\n got %q\nwant %q", round, i, b.String(), want)
			}
		}
	}
}

func ruleFieldsDst(dst uint32) rule.Fields {
	return rule.Fields{Dst: dst}
}

// TestBatchUnderManagerChurn runs whole batches concurrently with
// predicate churn and reconstruction swaps: a batch pins one epoch, so
// every element must keep returning the pre-churn behavior even when the
// published snapshot (and with it the behavior cache) is swapped mid-batch.
func TestBatchUnderManagerChurn(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 47, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	numVars := ds.Layout.Bits()

	rng := rand.New(rand.NewSource(48))
	const n = 48
	pkts := make([][]byte, n)
	ingress := make([]int, n)
	want := make([]string, n)
	for i := range pkts {
		f := ruleFieldsDst(0x0A000000 | uint32(rng.Intn(1<<16)))
		pkts[i] = ds.PacketFromFields(f)
		ingress[i] = rng.Intn(len(ds.Boxes))
		want[i] = c.Behavior(ingress[i], pkts[i]).String()
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		wrng := rand.New(rand.NewSource(49))
		for i := 0; i < 30; i++ {
			bits := uint64(wrng.Uint32())
			c.Manager.AddPredicate(func(d *bdd.DD) bdd.Ref {
				return d.FromPrefix(0, bits>>8, 8+wrng.Intn(17), numVars)
			})
			if i%5 == 0 {
				c.Reconstruct(false)
			}
		}
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			buf := c.NewBatchBuffer()
			for i := 0; i < 200; i++ {
				got := c.BehaviorBatch(buf, ingress, pkts)
				for k, b := range got {
					if b.String() != want[k] {
						t.Errorf("batch element %d drifted under churn:\n got %q\nwant %q",
							k, b.String(), want[k])
						return
					}
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(int64(60 + r))
	}
	wg.Wait()
}
