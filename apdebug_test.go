//go:build apdebug

package apclassifier

import (
	"math/rand"
	"strings"
	"testing"

	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

// TestApdebugCacheEpochCheck drives the apdebug assertion that a cached
// behavior is never served from a retired epoch: the cache's snapshot
// pointer must equal the query's pinned snapshot at the single lookup
// point (behaviorVia). cacheFor guarantees this by construction, so the
// panic can only be provoked by calling the check directly with a
// mismatched pair.
func TestApdebugCacheEpochCheck(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 51, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	old := c.Manager.Snapshot()
	bc := c.cacheFor(old)
	if bc == nil || bc.Epoch() != old {
		t.Fatal("cacheFor must install a cache for the published epoch")
	}
	// Matching pair and nil cache are silent.
	debugCheckCacheEpoch(bc, old)
	debugCheckCacheEpoch(nil, old)

	c.Reconstruct(false)
	fresh := c.Manager.Snapshot()
	if fresh == old {
		t.Fatal("reconstruction must publish a new snapshot")
	}
	// The normal path never pairs the old cache with the new epoch…
	if got := c.cacheFor(fresh); got != nil && got.Epoch() != fresh {
		t.Fatal("cacheFor returned a cache from a retired epoch")
	}
	// …and the assertion catches anyone who does.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mismatched cache/epoch pair must panic under apdebug")
		}
		if !strings.Contains(r.(string), "apdebug") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	debugCheckCacheEpoch(bc, fresh)
}

// TestApdebugDeltaPartition drives the delta pipeline with the leaf
// partition sanitizer armed: under -tags apdebug every ApplyDelta and
// RemovePredicate self-checks inside the transaction, and this test
// additionally audits the published tree after each batch — the
// incrementally split/merged leaves must remain a disjoint, exhaustive
// partition of the header space, with membership labels matching the
// full refinement (Validate).
func TestApdebugDeltaPartition(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 52, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	var added []RuleDelta
	for batch := 0; batch < 8; batch++ {
		var deltas []RuleDelta
		for k := 0; k < 3; k++ {
			box := rng.Intn(len(ds.Boxes))
			tbl := &ds.Boxes[box].Fwd
			parent := tbl.Rules[rng.Intn(len(tbl.Rules))]
			if parent.Prefix.Length >= 32 {
				continue
			}
			length := parent.Prefix.Length + 1 + rng.Intn(32-parent.Prefix.Length)
			r := rule.FwdRule{
				Prefix: rule.P(parent.Prefix.Value|rng.Uint32()&^uint32(0xFFFFFFFF<<uint(32-parent.Prefix.Length)), length),
				Port:   parent.Port,
			}
			deltas = append(deltas, RuleDelta{Op: OpAddFwdRule, Box: box, Rule: r})
			added = append(added, RuleDelta{Op: OpRemoveFwdRule, Box: box, Prefix: r.Prefix})
		}
		if len(added) > 2 && rng.Intn(2) == 0 {
			j := rng.Intn(len(added))
			deltas = append(deltas, added[j])
			added = append(added[:j], added[j+1:]...)
		}
		if err := c.ApplyRuleDeltas(deltas); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		tree := c.Manager.Tree()
		if err := tree.CheckLeafPartition(); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if err := tree.Validate(c.Manager.LiveIDs()); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
}
