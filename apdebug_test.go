//go:build apdebug

package apclassifier

import (
	"strings"
	"testing"

	"apclassifier/internal/netgen"
)

// TestApdebugCacheEpochCheck drives the apdebug assertion that a cached
// behavior is never served from a retired epoch: the cache's snapshot
// pointer must equal the query's pinned snapshot at the single lookup
// point (behaviorVia). cacheFor guarantees this by construction, so the
// panic can only be provoked by calling the check directly with a
// mismatched pair.
func TestApdebugCacheEpochCheck(t *testing.T) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 51, RuleScale: 0.01})
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	old := c.Manager.Snapshot()
	bc := c.cacheFor(old)
	if bc == nil || bc.Epoch() != old {
		t.Fatal("cacheFor must install a cache for the published epoch")
	}
	// Matching pair and nil cache are silent.
	debugCheckCacheEpoch(bc, old)
	debugCheckCacheEpoch(nil, old)

	c.Reconstruct(false)
	fresh := c.Manager.Snapshot()
	if fresh == old {
		t.Fatal("reconstruction must publish a new snapshot")
	}
	// The normal path never pairs the old cache with the new epoch…
	if got := c.cacheFor(fresh); got != nil && got.Epoch() != fresh {
		t.Fatal("cacheFor returned a cache from a retired epoch")
	}
	// …and the assertion catches anyone who does.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("mismatched cache/epoch pair must panic under apdebug")
		}
		if !strings.Contains(r.(string), "apdebug") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	debugCheckCacheEpoch(bc, fresh)
}
