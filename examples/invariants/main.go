// Network-wide invariant checking at atomic-predicate granularity: exact
// reachability sets, loop detection over the whole header space, and a
// box-to-box connectivity matrix — the §I applications, answered as BDDs
// rather than per-packet samples.
package main

import (
	"fmt"
	"log"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
	"apclassifier/internal/rule"
	"apclassifier/internal/verify"
)

func main() {
	ds := netgen.Internet2Like(netgen.Config{Seed: 4, RuleScale: 0.02})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		log.Fatal(err)
	}
	a := verify.New(c)
	fmt.Printf("analyzing %d atoms over %d boxes\n\n", a.NumAtoms(), len(ds.Boxes))

	// Exact reachability: the set of packets that reach a host from a box.
	seattle := c.Net.BoxByName("seattle")
	for _, h := range ds.Hosts[:3] {
		set := a.ReachSet(seattle, h.Name)
		fmt.Printf("packets reaching %-7s from seattle: %s\n", h.Name, a.Describe(set))
	}

	// Blackholes: everything seattle cannot route.
	fmt.Printf("\nblackholed at/after seattle: %s\n", a.Describe(a.Blackholes(seattle)))

	// Loop freedom across the entire header space, every ingress.
	if loops := a.Loops(); len(loops) == 0 {
		fmt.Println("loop freedom: HOLDS for all packets from all ingresses")
	} else {
		fmt.Printf("loop freedom: VIOLATED by %d (ingress, atom) pairs\n", len(loops))
	}

	// Connectivity matrix: atoms from row box that traverse column box.
	fmt.Println("\nconnectivity matrix (atoms traversing column when entering at row):")
	m := a.ReachabilityMatrix()
	fmt.Printf("%14s", "")
	for _, b := range ds.Boxes {
		fmt.Printf("%6.5s", b.Name)
	}
	fmt.Println()
	for i, row := range m {
		fmt.Printf("%14s", ds.Boxes[i].Name)
		for _, v := range row {
			fmt.Printf("%6d", v)
		}
		fmt.Println()
	}

	// Now break the network and watch the invariant fail: make chicago
	// and kansascity bounce 10.0.0.0/8 between each other.
	chi, kc := c.Net.BoxByName("chicago"), c.Net.BoxByName("kansascity")
	fmt.Println("\ninjecting a routing loop for 10.0.0.0/8 between chicago and kansascity...")
	toKC := portToward(c, chi, kc)
	toChi := portToward(c, kc, chi)
	c.AddFwdRule(chi, rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: toKC})
	c.AddFwdRule(kc, rule.FwdRule{Prefix: rule.P(0x0A000000, 8), Port: toChi})

	a2 := verify.New(c)
	loops := a2.Loops()
	fmt.Printf("loop check now reports %d violating (ingress, atom) pairs\n", len(loops))
	if len(loops) > 0 {
		fmt.Printf("example violating header: atom %d from %s\n",
			loops[0].AtomID, ds.Boxes[loops[0].Ingress].Name)
	}
}

// portToward finds the port of box a that links directly to box b.
func portToward(c *apclassifier.Classifier, a, b int) int {
	for pi, p := range c.Net.Boxes[a].Ports {
		if p.Peer.Kind == network.DestBox && p.Peer.Box == b {
			return pi
		}
	}
	log.Fatalf("no direct link %d -> %d", a, b)
	return -1
}
