// Guarded deployment: the controller workflow the paper opens §I with —
// before any data-plane update is committed, verify that the data plane
// *with the update* still satisfies the network's flow properties. Safe
// updates commit; property-breaking updates roll back automatically.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/policy"
	"apclassifier/internal/rule"
)

func main() {
	ds := netgen.Internet2Like(netgen.Config{Seed: 31, RuleScale: 0.02})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))

	// The network's contract: a handful of monitored services must stay
	// reachable, and the data plane must stay loop-free.
	var props []policy.Property
	props = append(props, policy.Property{Kind: policy.LoopFree})
	d := c.Manager.DD()
	dstField := ds.Layout.MustField("dstIP")
	type service struct {
		ing  int
		host string
		dst  uint32
		dbox int
	}
	var services []service
	for len(props) < 4 {
		f := ds.RandomFields(rng)
		ing := rng.Intn(len(ds.Boxes))
		if b := c.Behavior(ing, ds.PacketFromFields(f)); len(b.Deliveries) == 1 {
			// Scope each property to the service address itself: THIS
			// destination must keep reaching THIS host — stronger than
			// "anything reaches".
			props = append(props, policy.Property{
				Kind: policy.Reachable, From: ing, Host: b.Deliveries[0].Host,
				Scope: d.FromPrefix(dstField.Offset, uint64(f.Dst), 32, 32),
			})
			services = append(services, service{ing, b.Deliveries[0].Host, f.Dst, b.Deliveries[0].Box})
		}
	}
	if v := policy.Check(c, props); len(v) != 0 {
		log.Fatalf("contract does not hold initially: %v", v)
	}
	fmt.Printf("contract: %d properties hold\n\n", len(props))
	g := policy.NewGuard(c, props)

	// Proposed change 1: a harmless blackhole for unused space.
	r1 := rule.FwdRule{Prefix: rule.P(0xF0000000, 8), Port: rule.Drop}
	ok, _ := g.TryFwdRule(0, r1)
	fmt.Printf("proposal 1 (drop 240.0.0.0/8 at %s): committed=%v\n", ds.Boxes[0].Name, ok)

	// Proposed change 2: a typo'd host route that would blackhole a
	// monitored service address at its delivery box (a /32 always wins
	// the longest-prefix match, so this bites immediately).
	victim := services[0]
	r2 := rule.FwdRule{Prefix: rule.P(victim.dst, 32), Port: rule.Drop}
	ok, violations := g.TryFwdRule(victim.dbox, r2)
	fmt.Printf("proposal 2 (blackhole %s/32 at %s): committed=%v\n",
		ipStr(victim.dst), ds.Boxes[victim.dbox].Name, ok)
	for _, v := range violations {
		fmt.Printf("  violation: %s — %s\n", v.Property, v.Detail)
	}

	// The contract still holds afterwards.
	if v := policy.Check(c, props); len(v) == 0 {
		fmt.Println("\ncontract intact after both proposals ✔")
	}
}

func ipStr(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
