// Fault localization (§I): when a flow property is violated, compare the
// expected behavior with the identified actual behavior to find the box
// whose data plane is at fault. We inject a misconfigured rule into a
// random box and let behavior identification pinpoint it.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

func main() {
	ds := netgen.Internet2Like(netgen.Config{Seed: 5, RuleScale: 0.05})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))

	// Pick a flow that currently works end to end from every ingress.
	var flow rule.Fields
	var host string
	for {
		f := ds.RandomFields(rng)
		ref := ds.Simulate(0, f)
		if len(ref.Delivered) == 1 {
			flow, host = f, ref.Delivered[0]
			break
		}
	}
	fmt.Printf("monitored flow: dst %s, expected delivery to %s\n", ip(flow.Dst), host)

	// Record the expected path from a chosen ingress.
	ingress := rng.Intn(len(ds.Boxes))
	expected := c.Behavior(ingress, ds.PacketFromFields(flow))
	fmt.Printf("expected path from %s: %s\n\n", ds.Boxes[ingress].Name, pathNames(ds, expected.Path()))

	// Fault injection: a more-specific drop rule appears on one of the
	// boxes along the path (a typo'd blackhole, say).
	path := expected.Path()
	faulty := path[rng.Intn(len(path))]
	fmt.Printf("injecting faulty rule (blackhole %s/32) into %s...\n\n", ip(flow.Dst), ds.Boxes[faulty].Name)
	c.AddFwdRule(faulty, rule.FwdRule{Prefix: rule.P(flow.Dst, 32), Port: rule.Drop})

	// Detection: the property "flow reaches host" now fails.
	actual := c.Behavior(ingress, ds.PacketFromFields(flow))
	if actual.Delivered(host) {
		log.Fatal("fault not observable — injection failed")
	}
	fmt.Printf("property violation detected: flow no longer reaches %s\n", host)
	fmt.Printf("actual behavior: %s\n\n", actual)

	// Localization: walk the expected path; the first box where actual
	// behavior diverges from expected is the faulty one.
	actualPath := actual.Path()
	located := -1
	for i, box := range path {
		if i >= len(actualPath) || actualPath[i] != box {
			located = path[i-1]
			break
		}
	}
	if located < 0 {
		// Paths agree on every common hop: the fault is at the last
		// common box (it drops instead of delivering/forwarding).
		located = actualPath[len(actualPath)-1]
	}
	fmt.Printf("localized fault at: %s\n", ds.Boxes[located].Name)
	if located == faulty {
		fmt.Println("localization CORRECT ✔")
	} else {
		fmt.Printf("localization WRONG (injected at %s)\n", ds.Boxes[faulty].Name)
	}

	// Repair and verify.
	c.RemoveFwdRule(faulty, rule.P(flow.Dst, 32))
	if c.Behavior(ingress, ds.PacketFromFields(flow)).Delivered(host) {
		fmt.Println("after repair: flow delivered again ✔")
	}
}

func pathNames(ds *netgen.Dataset, path []int) string {
	s := ""
	for i, b := range path {
		if i > 0 {
			s += " -> "
		}
		s += ds.Boxes[b].Name
	}
	return s
}

func ip(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
