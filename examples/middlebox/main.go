// Middlebox header changes (§V-E): attach a NAT-style middlebox to a
// backbone router and identify behaviors across the rewrite — including
// the Type-1 flow-table cache, Type-2 re-search, and a Type-3
// probabilistic load balancer.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"apclassifier"
	"apclassifier/internal/bdd"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
	"apclassifier/internal/rule"
)

func main() {
	ds := netgen.Internet2Like(netgen.Config{Seed: 9, RuleScale: 0.05})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))

	// Two real, routed destinations the NAT will translate to.
	insideA := routedDst(ds, rng)
	insideB := routedDst(ds, rng)
	// A virtual service prefix that is NOT routed: without the NAT,
	// packets to 198.18.0.0/16 are dropped.
	const vip = uint32(0xC6120000)

	// The middlebox matches the virtual prefix; matching is done through
	// a predicate that participates in atomic-predicate computation.
	matchID := c.Manager.AddPredicate(func(d *bdd.DD) bdd.Ref {
		f := ds.Layout.MustField("dstIP")
		return d.FromPrefix(f.Offset, uint64(vip), 16, 32)
	})

	natBox := c.Net.BoxByName("chicago")
	rewriteTo := func(dst uint32) network.Rewrite {
		return network.SetFieldRewrite(func(pkt []byte) {
			ds.Layout.Set(pkt, "dstIP", uint64(dst))
		})
	}
	c.Net.Boxes[natBox].MB = &network.Middlebox{
		Name: "nat1",
		Entries: []network.MBEntry{{
			Match:   matchID,
			Type:    network.MBDeterministic,
			Rewrite: rewriteTo(insideA),
		}},
	}

	pkt := ds.PacketFromFields(rule.Fields{Dst: vip | 0x1234})

	fmt.Println("-- without traversing the NAT --")
	other := (natBox + 1) % len(ds.Boxes)
	fmt.Printf("from %s: %s\n\n", ds.Boxes[other].Name, c.Behavior(other, pkt))

	fmt.Println("-- Type 1 (deterministic) NAT at chicago --")
	b := c.Behavior(natBox, pkt)
	fmt.Printf("from %s: %s\n", ds.Boxes[natBox].Name, b)
	fmt.Printf("flow-table cache entries after first packet: %d\n", c.Net.Boxes[natBox].MB.CacheLen())
	c.Behavior(natBox, pkt)
	fmt.Printf("after second packet (cache hit): %d\n\n", c.Net.Boxes[natBox].MB.CacheLen())

	fmt.Println("-- Type 3 (probabilistic) load balancer: VIP -> {A, B} --")
	c.Net.Boxes[natBox].MB.Entries[0] = network.MBEntry{
		Match: matchID,
		Type:  network.MBProbabilistic,
		Rewrite: func(p []byte) [][]byte {
			a := append([]byte(nil), p...)
			ds.Layout.Set(a, "dstIP", uint64(insideA))
			b := append([]byte(nil), p...)
			ds.Layout.Set(b, "dstIP", uint64(insideB))
			return [][]byte{a, b}
		},
	}
	b = c.Behavior(natBox, pkt)
	fmt.Printf("from %s: %s\n", ds.Boxes[natBox].Name, b)
	fmt.Printf("probabilistic: %v, possible deliveries: %d\n", b.Probabilistic, len(b.Deliveries))
}

func routedDst(ds *netgen.Dataset, rng *rand.Rand) uint32 {
	for {
		f := ds.RandomFields(rng)
		if res := ds.Simulate(0, f); len(res.Delivered) == 1 {
			return f.Dst
		}
	}
}
