// Attack detection (§I): like SPHINX, build a baseline of expected
// network behavior — here, the exact per-atom behavior from every ingress —
// then watch for data-plane state whose behavior deviates from it. We
// simulate a compromise that stealthily reroutes a victim prefix through
// an attacker-chosen box (a path-hijack for eavesdropping) and detect it
// by diffing behaviors, not by inspecting rules.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
	"apclassifier/internal/rule"
)

func main() {
	ds := netgen.Internet2Like(netgen.Config{Seed: 21, RuleScale: 0.03})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))

	// Phase 1 — learn the baseline: behavior fingerprints for a set of
	// monitored flows from their usual ingress points.
	type flowKey struct {
		ingress int
		dst     uint32
	}
	baseline := map[flowKey]string{}
	var monitored []flowKey
	for len(monitored) < 40 {
		f := ds.RandomFields(rng)
		ing := rng.Intn(len(ds.Boxes))
		b := c.Behavior(ing, ds.PacketFromFields(rule.Fields{Dst: f.Dst}))
		if !b.Delivered("") {
			continue
		}
		k := flowKey{ing, f.Dst}
		baseline[k] = fingerprint(b)
		monitored = append(monitored, k)
	}
	fmt.Printf("baseline learned for %d monitored flows\n\n", len(monitored))

	// Phase 2 — the attack: pick a tap box adjacent to the victim's
	// ingress but off the victim's normal path, and detour the victim /32
	// through it. The tap's own FIB still delivers the traffic onward, so
	// the flow keeps working — a stealthy path hijack for eavesdropping.
	victim := monitored[7]
	path := c.Behavior(victim.ingress, ds.PacketFromFields(rule.Fields{Dst: victim.dst})).Path()
	onPath := map[int]bool{}
	for _, b := range path {
		onPath[b] = true
	}
	tap, tapPort := -1, -1
	for pi, p := range c.Net.Boxes[victim.ingress].Ports {
		if p.Peer.Kind == network.DestBox && !onPath[p.Peer.Box] {
			tap, tapPort = p.Peer.Box, pi
			break
		}
	}
	if tap < 0 { // every neighbor is on the path: just pick one mid-path
		for pi, p := range c.Net.Boxes[victim.ingress].Ports {
			if p.Peer.Kind == network.DestBox {
				tap, tapPort = p.Peer.Box, pi
			}
		}
	}
	fmt.Printf("ATTACK: detouring dst %s through %s...\n", ip(victim.dst), ds.Boxes[tap].Name)
	c.AddFwdRule(victim.ingress, rule.FwdRule{Prefix: rule.P(victim.dst, 32), Port: tapPort})

	// Phase 3 — detection sweep: re-fingerprint all monitored flows.
	alarms := 0
	for _, k := range monitored {
		b := c.Behavior(k.ingress, ds.PacketFromFields(rule.Fields{Dst: k.dst}))
		if got := fingerprint(b); got != baseline[k] {
			alarms++
			fmt.Printf("ALARM: flow dst %s from %s deviates\n  expected %s\n  observed %s\n",
				ip(k.dst), ds.Boxes[k.ingress].Name, baseline[k], got)
			if b.Traverses(tap) {
				fmt.Printf("  -> traffic now passes through %s (possible tap)\n", ds.Boxes[tap].Name)
			}
		}
	}
	fmt.Printf("\ndetection sweep: %d/%d flows deviated\n", alarms, len(monitored))
	if alarms == 0 {
		fmt.Println("NOTE: hijack did not alter monitored behavior (try another seed)")
	}
}

// fingerprint canonicalizes a behavior for comparison.
func fingerprint(b *network.Behavior) string {
	return b.String()
}

func ip(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
