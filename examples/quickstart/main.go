// Quickstart: compile a synthetic Internet2-like network, identify the
// network-wide behavior of a few packets, apply a live rule update, and
// reconstruct the AP Tree — the whole public API in one file.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"apclassifier"
	"apclassifier/internal/netgen"
	"apclassifier/internal/rule"
)

func main() {
	// 1. A data-plane snapshot: 9 routers, destination-IP routing. At
	// scale 0.05 this is ~6.3k forwarding rules compiling to 161
	// predicates, like the real Internet2 dataset.
	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.05})

	// 2. Compile: rules → predicates → atomic predicates → AP Tree.
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d rules into %d predicates and %d atomic predicates (avg tree depth %.1f)\n\n",
		ds.NumRules(), c.NumPredicates(), c.NumAtoms(), c.AverageDepth())

	// 3. Query behaviors for random routed packets.
	rng := rand.New(rand.NewSource(7))
	shown := 0
	for shown < 3 {
		f := ds.RandomFields(rng)
		ingress := rng.Intn(len(ds.Boxes))
		pkt := ds.PacketFromFields(f)
		b := c.Behavior(ingress, pkt)
		if !b.Delivered("") {
			continue
		}
		shown++
		leaf := c.Classify(pkt)
		fmt.Printf("packet dst=%s entering %s\n", fmtIP(f.Dst), ds.Boxes[ingress].Name)
		fmt.Printf("  stage 1: atomic predicate #%d found at depth %d\n", leaf.AtomID, leaf.Depth)
		fmt.Printf("  stage 2: %s\n\n", describe(c, b))
	}

	// 4. Live update: blackhole a prefix on its delivery box and watch the
	// behavior change without any rebuild.
	target := ds.Hosts[0]
	victim := ds.Boxes[target.Box].Fwd.Rules[0]
	fmt.Printf("installing drop rule for %v on %s...\n", victim.Prefix, ds.Boxes[target.Box].Name)
	c.AddFwdRule(target.Box, rule.FwdRule{
		Prefix: rule.P(victim.Prefix.Value, 32), // a /32 inside the victim prefix
		Port:   rule.Drop,
	})
	f := rule.Fields{Dst: victim.Prefix.Value}
	b := c.Behavior(target.Box, ds.PacketFromFields(f))
	fmt.Printf("  behavior from %s now: %s\n\n", ds.Boxes[target.Box].Name, describe(c, b))

	// 5. Reconstruct the tree (normally done periodically in background).
	before := c.AverageDepth()
	c.Reconstruct(false)
	fmt.Printf("reconstructed AP Tree: avg depth %.1f -> %.1f\n", before, c.AverageDepth())
}

func describe(c *apclassifier.Classifier, b interface {
	Delivered(string) bool
	String() string
}) string {
	return b.String()
}

func fmtIP(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
