// Policy verification: use packet behavior identification to check flow
// properties of the kind §I motivates — forwarding correctness (routed
// flows actually reach their host), waypoint enforcement (traffic to a
// protected host traverses a chosen box), and drop compliance (unrouted
// traffic is dropped, not leaked).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"apclassifier"
	"apclassifier/internal/netgen"
)

func main() {
	ds := netgen.StanfordLike(netgen.Config{Seed: 3, RuleScale: 0.01})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d boxes, %d rules, %d ACL rules, %d predicates\n\n",
		len(ds.Boxes), ds.NumRules(), ds.NumACLRules(), c.NumPredicates())

	rng := rand.New(rand.NewSource(3))

	// Property 1 — forwarding correctness: from every ingress, the
	// identified behavior must match the expected behavior derived from
	// the rule tables (delivery to the same host, or a drop on both
	// sides — ACLs legitimately make delivery path-dependent).
	fmt.Println("property 1: forwarding correctness (identified vs expected, per ingress)")
	checked, violations := 0, 0
	for trial := 0; trial < 3000 && checked < 200; trial++ {
		f := ds.RandomFields(rng)
		ref := ds.Simulate(0, f)
		if len(ref.Delivered) != 1 {
			continue
		}
		checked++
		for ingress := range ds.Boxes {
			want := ds.Simulate(ingress, f)
			b := c.Behavior(ingress, ds.PacketFromFields(f))
			okWant := len(want.Delivered) == 1
			okGot := b.Delivered("")
			if okWant != okGot || (okWant && !b.Delivered(want.Delivered[0])) {
				violations++
				fmt.Printf("  VIOLATION: dst %08x from %s: expected %v, identified %s\n",
					f.Dst, ds.Boxes[ingress].Name, want.Delivered, b)
			}
		}
	}
	fmt.Printf("  %d flows × %d ingresses checked, %d violations\n\n", checked, len(ds.Boxes), violations)

	// Property 2 — waypoint enforcement: traffic delivered through a zone
	// router's edge ports must traverse one of the two backbone routers
	// whenever it enters at a different zone router.
	fmt.Println("property 2: backbone waypoint for inter-zone traffic")
	bbra, bbrb := c.Net.BoxByName("bbra"), c.Net.BoxByName("bbrb")
	checked, violations = 0, 0
	for trial := 0; trial < 5000 && checked < 200; trial++ {
		f := ds.RandomFields(rng)
		ingress := 2 + rng.Intn(14) // a zone router
		b := c.Behavior(ingress, ds.PacketFromFields(f))
		if !b.Delivered("") {
			continue
		}
		// Delivered locally at the ingress zone router? Then no waypoint
		// is required.
		local := true
		for _, d := range b.Deliveries {
			if d.Box != ingress {
				local = false
			}
		}
		if local {
			continue
		}
		checked++
		if !b.Traverses(bbra) && !b.Traverses(bbrb) {
			violations++
			fmt.Printf("  VIOLATION: inter-zone flow dst %08x skips both backbone routers\n", f.Dst)
		}
	}
	fmt.Printf("  %d inter-zone flows checked, %d violations\n\n", checked, violations)

	// Property 3 — drop compliance: traffic to unrouted space must not be
	// delivered anywhere.
	fmt.Println("property 3: unrouted traffic is dropped")
	checked, violations = 0, 0
	for trial := 0; trial < 2000 && checked < 200; trial++ {
		f := ds.RandomFields(rng)
		f.Dst = 0x08000000 | rng.Uint32()>>8 // 8/8 is outside generator bases
		checked++
		b := c.Behavior(rng.Intn(len(ds.Boxes)), ds.PacketFromFields(f))
		if b.Delivered("") {
			violations++
			fmt.Printf("  VIOLATION: unrouted dst %08x delivered\n", f.Dst)
		}
	}
	fmt.Printf("  %d unrouted flows checked, %d violations\n", checked, violations)
}
