package apclassifier

import (
	"apclassifier/internal/aptree"
	"apclassifier/internal/header"
	"apclassifier/internal/network"
)

// Snapshot is one immutable epoch of the classifier, pinned at the
// moment Classifier.Snapshot was called. Every query method answers
// against that epoch — the same AP Tree, BDD view and predicate
// liveness — no matter how many updates or reconstructions the live
// classifier absorbs afterwards, and none of them takes a lock.
//
// Use a Snapshot when a batch of queries must be mutually consistent
// (an invariant sweep, a what-if analysis, a /stats report), or simply
// to amortize the one atomic load per query that Classifier.Behavior
// performs. Snapshots are safe for concurrent use by any number of
// goroutines and may be retained indefinitely; an old epoch's memory is
// reclaimed by Go's GC once the last snapshot referencing it is
// dropped.
//
// Topology is not part of the snapshot: rule updates that rewire port
// predicate IDs still require external synchronization with in-flight
// queries, exactly as Classifier documents.
type Snapshot struct {
	c *Classifier
	s *aptree.Snapshot
}

// Snapshot pins the current epoch.
func (c *Classifier) Snapshot() *Snapshot {
	return &Snapshot{c: c, s: c.Manager.Snapshot()}
}

// Version reports the reconstruction epoch this snapshot is pinned to.
func (s *Snapshot) Version() uint64 { return s.s.Version() }

// Classify runs stage 1 against the pinned epoch.
func (s *Snapshot) Classify(pkt header.Packet) *aptree.Node {
	leaf, _ := s.s.Classify(pkt)
	return leaf
}

// Behavior runs both stages against the pinned epoch. Like
// Classifier.Behavior it consults the epoch's behavior cache (when the
// pinned epoch is still the published one) and memoizes deterministic
// walks; the result may be that shared cached value and must be treated
// as read-only.
func (s *Snapshot) Behavior(ingress int, pkt header.Packet) *network.Behavior {
	leaf, _ := s.s.Classify(pkt)
	return s.c.behaviorVia(s.c.cacheFor(s.s), nil, s.s, ingress, pkt, leaf, false)
}

// BehaviorWith is Behavior using the caller's Walker scratch space; the
// result is read-only and valid until the Walker's next query.
func (s *Snapshot) BehaviorWith(w *network.Walker, ingress int, pkt header.Packet) *network.Behavior {
	leaf, _ := s.s.Classify(pkt)
	return s.c.behaviorVia(s.c.cacheFor(s.s), w, s.s, ingress, pkt, leaf, false)
}

// BehaviorFrom runs stage 2 only, from a leaf the caller already
// obtained via Classify on this same snapshot. Callers that need both
// the leaf and the behavior (the server's /query, traced queries) use it
// to avoid classifying the packet twice.
func (s *Snapshot) BehaviorFrom(ingress int, pkt header.Packet, leaf *aptree.Node) *network.Behavior {
	return s.c.behaviorVia(s.c.cacheFor(s.s), nil, s.s, ingress, pkt, leaf, false)
}

// NumPredicates reports the number of live predicates in the epoch.
func (s *Snapshot) NumPredicates() int { return s.s.NumLive() }

// NumAtoms reports the number of leaves of the epoch's tree.
func (s *Snapshot) NumAtoms() int { return s.s.Tree().NumLeaves() }

// AverageDepth reports the epoch tree's mean leaf depth.
func (s *Snapshot) AverageDepth() float64 { return s.s.Tree().AverageDepth() }

// LiveMemBytes reports the live BDD bytes of the epoch's frozen view.
func (s *Snapshot) LiveMemBytes() int { return s.s.View().LiveMemBytes() }

// Source exposes the pinned epoch as a stage-2 source, for driving
// network.Behavior or middleboxes directly.
func (s *Snapshot) Source() network.Source { return s.s }
