package apclassifier_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VII), plus per-operation microbenchmarks and the ablation
// benches called out in DESIGN.md. The figure benches run a whole
// experiment per iteration and report its headline number via
// b.ReportMetric; `cmd/apbench` prints the full tables.
//
// Scale: controlled by APBENCH_SCALE (small|mid|full); benchmarks default
// to "small" unless the variable is set, so `go test -bench=.` stays fast.

import (
	"math/rand"

	apclassifier "apclassifier"
	"os"
	"strconv"
	"testing"
	"time"

	"apclassifier/internal/aptree"
	"apclassifier/internal/bdd"
	"apclassifier/internal/experiments"
	"apclassifier/internal/netgen"
	"apclassifier/internal/network"
	"apclassifier/internal/predicate"
)

var benchEnv *experiments.Env

func benchScale() experiments.Scale {
	if os.Getenv("APBENCH_SCALE") == "" {
		return experiments.ScaleSmall
	}
	return experiments.DefaultScale()
}

func getEnv(b *testing.B) *experiments.Env {
	b.Helper()
	if benchEnv == nil {
		e, err := experiments.NewEnv(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		benchEnv = e
	}
	return benchEnv
}

const benchDur = 50 * time.Millisecond

// parseMqps extracts a Mqps cell.
func parseMqps(b *testing.B, s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// --- Per-operation microbenchmarks (the headline numbers) ---

func benchClassify(b *testing.B, c *apclassifier.Classifier, ds *netgen.Dataset) {
	rng := rand.New(rand.NewSource(1))
	trace := make([][]byte, 1024)
	for i := range trace {
		trace[i] = ds.PacketFromFields(ds.RandomFields(rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(trace[i%len(trace)])
	}
}

func benchBehavior(b *testing.B, c *apclassifier.Classifier, ds *netgen.Dataset) {
	rng := rand.New(rand.NewSource(2))
	trace := make([][]byte, 1024)
	ing := make([]int, 1024)
	for i := range trace {
		trace[i] = ds.PacketFromFields(ds.RandomFields(rng))
		ing[i] = rng.Intn(len(ds.Boxes))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Behavior(ing[i%1024], trace[i%len(trace)])
	}
}

func BenchmarkClassifyInternet2(b *testing.B) {
	e := getEnv(b)
	benchClassify(b, e.I2, e.I2DS)
}

func BenchmarkClassifyStanford(b *testing.B) {
	e := getEnv(b)
	benchClassify(b, e.SF, e.SFDS)
}

func BenchmarkBehaviorInternet2(b *testing.B) {
	e := getEnv(b)
	benchBehavior(b, e.I2, e.I2DS)
}

func BenchmarkBehaviorStanford(b *testing.B) {
	e := getEnv(b)
	benchBehavior(b, e.SF, e.SFDS)
}

// BenchmarkBehaviorBatch compares the batched query pipeline against the
// single-packet path on a bursty trace (each header repeated in flows of
// 16, the locality real query streams have) with one deterministic
// middlebox attached so stage 2 is non-trivial but cacheable. Both paths
// share the per-epoch behavior cache; the batch path additionally
// collapses duplicate headers in stage 1 and dedupes (ingress, atom)
// classes in stage 2. ns/op is per packet in every sub-benchmark.
func BenchmarkBehaviorBatch(b *testing.B) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: benchScale().I2})
	c, err := apclassifier.New(ds, apclassifier.Options{})
	if err != nil {
		b.Fatal(err)
	}
	match := c.Manager.AddPredicate(func(d *bdd.DD) bdd.Ref { return bdd.True })
	target := ds.PacketFromFields(ds.RandomFields(rand.New(rand.NewSource(7))))
	c.Net.Boxes[0].MB = &network.Middlebox{
		Name: "bench-mb",
		Entries: []network.MBEntry{{
			Match: match, Type: network.MBDeterministic,
			Rewrite: func(pkt []byte) [][]byte {
				out := make([]byte, len(target))
				copy(out, target)
				return [][]byte{out}
			},
		}},
	}

	const flow = 16
	rng := rand.New(rand.NewSource(8))
	trace := make([][]byte, 4096)
	ing := make([]int, len(trace))
	for i := 0; i < len(trace); i += flow {
		pkt := ds.PacketFromFields(ds.RandomFields(rng))
		box := rng.Intn(len(ds.Boxes))
		for k := i; k < len(trace) && k < i+flow; k++ {
			trace[k] = pkt
			ing[k] = box
		}
	}

	b.Run("single", func(b *testing.B) {
		w := c.NewWalker()
		for i := 0; i < b.N; i++ {
			c.BehaviorWith(w, ing[i%len(ing)], trace[i%len(trace)])
		}
	})
	for _, size := range []int{16, 64, 256} {
		b.Run("batch"+strconv.Itoa(size), func(b *testing.B) {
			buf := c.NewBatchBuffer()
			pos := 0
			for i := 0; i < b.N; i += size {
				if pos+size > len(trace) {
					pos = 0
				}
				c.BehaviorBatch(buf, ing[pos:pos+size], trace[pos:pos+size])
				pos += size
			}
		})
	}
}

// --- One benchmark per table/figure ---

func BenchmarkTableI_DatasetStats(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.TableI()
		if len(t.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig4_ThroughputVsDepth(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		tabs := e.Fig4(5, 128, benchDur)
		star := tabs[0].Rows[len(tabs[0].Rows)-1]
		b.ReportMetric(parseMqps(b, star[2]), "I2-OAPT-Mqps")
	}
}

func BenchmarkFig9_AverageDepth(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.Fig9(10)
		b.ReportMetric(parseMqps(b, t.Rows[0][3]), "I2-OAPT-depth")
		b.ReportMetric(parseMqps(b, t.Rows[1][3]), "SF-OAPT-depth")
	}
}

func BenchmarkFig10_DepthCDF(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		tabs := e.Fig10(10)
		if len(tabs) != 2 {
			b.Fatal("bad tables")
		}
	}
}

func BenchmarkMemoryUsage(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.MemoryUsage()
		b.ReportMetric(parseMqps(b, t.Rows[0][2]), "I2-MB")
		b.ReportMetric(parseMqps(b, t.Rows[1][2]), "SF-MB")
	}
}

func BenchmarkFig11_ConstructionTime(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.Fig11(3)
		if len(t.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig12_StaticThroughput(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.Fig12(5, 128, benchDur)
		for _, row := range t.Rows {
			if row[0] == "internet2" && row[1] == "AP Classifier (OAPT)" {
				b.ReportMetric(parseMqps(b, row[2]), "I2-OAPT-Mqps")
			}
			if row[0] == "internet2" && row[1] == "HSA (Hassel)" {
				b.ReportMetric(parseMqps(b, row[2])*1000, "I2-HSA-Kqps")
			}
		}
	}
}

func BenchmarkFig13_UpdateLatency(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		tabs := e.Fig13(25)
		if len(tabs) != 2 {
			b.Fatal("bad tables")
		}
	}
}

func BenchmarkFig14_DynamicThroughput(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		tabs := e.Fig14(100, 600*time.Millisecond, 100*time.Millisecond, 200*time.Millisecond)
		if len(tabs) != 2 {
			b.Fatal("bad tables")
		}
	}
}

func BenchmarkFig15_PacketDistribution(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		tabs := e.Fig15(3, 256, benchDur)
		if len(tabs) != 2 {
			b.Fatal("bad tables")
		}
	}
}

func BenchmarkTableII_HeaderChanges(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.TableII(128, benchDur)
		b.ReportMetric(parseMqps(b, t.Rows[0][2]), "I2-1MB-r0.9-Mqps")
	}
}

func BenchmarkRuleUpdateCost(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.RuleUpdateCost(20)
		if len(t.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkScalingSweep(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.Scaling([]float64{0.02, 0.05}, 128, benchDur)
		if len(t.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkOptimalityGap(b *testing.B) {
	e := getEnv(b)
	for i := 0; i < b.N; i++ {
		t := e.OptimalityGap(8, 5)
		if len(t.Rows) != 2 {
			b.Fatal("bad table")
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblation_OAPTNoSplitFilter compares OAPT construction with and
// without dropping non-splitting predicates from subtree candidate sets.
func BenchmarkAblation_OAPTNoSplitFilter(b *testing.B) {
	e := getEnv(b)
	in := e.I2.TreeInput()
	for _, filter := range []bool{true, false} {
		name := "filter-on"
		if !filter {
			name = "filter-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in2 := in
				in2.NoSplitFilter = !filter
				t := aptree.Build(in2, aptree.MethodOAPT)
				t.Drop()
			}
		})
	}
}

// BenchmarkAblation_Stage2MemberVsBDD compares stage-2 port decisions via
// membership bit tests against re-evaluating the port predicate BDDs — the
// design decision that makes stage 2 nearly free.
func BenchmarkAblation_Stage2MemberVsBDD(b *testing.B) {
	e := getEnv(b)
	c, ds := e.I2, e.I2DS
	rng := rand.New(rand.NewSource(3))
	trace := make([][]byte, 512)
	ing := make([]int, 512)
	for i := range trace {
		trace[i] = ds.PacketFromFields(ds.RandomFields(rng))
		ing[i] = rng.Intn(len(ds.Boxes))
	}
	b.Run("member-bits", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Behavior(ing[i%512], trace[i%len(trace)])
		}
	})
	b.Run("member-bits-walker", func(b *testing.B) {
		w := c.NewWalker()
		for i := 0; i < b.N; i++ {
			c.BehaviorWith(w, ing[i%512], trace[i%len(trace)])
		}
	})
	b.Run("bdd-eval", func(b *testing.B) {
		sim := newFwdSimForBench(c)
		for i := 0; i < b.N; i++ {
			sim(ing[i%512], trace[i%len(trace)])
		}
	})
}

// newFwdSimForBench adapts the forwarding-simulation baseline as the
// "stage 2 by BDD evaluation" arm of the ablation.
func newFwdSimForBench(c *apclassifier.Classifier) func(int, []byte) {
	d := c.Manager.DD()
	net := c.Net
	return func(ingress int, pkt []byte) {
		// Same traversal as network.Behavior but deciding each port by
		// BDD evaluation instead of a membership bit.
		visited := make(map[int]bool)
		queue := []int{ingress}
		for len(queue) > 0 {
			bi := queue[0]
			queue = queue[1:]
			if visited[bi] {
				continue
			}
			visited[bi] = true
			box := net.Boxes[bi]
			for pi := range box.Ports {
				id := box.Ports[pi].Fwd
				if id < 0 || !c.Manager.IsLive(id) {
					continue
				}
				if !d.EvalBits(c.Manager.Ref(id), pkt) {
					continue
				}
				if box.Ports[pi].Peer.Kind == 1 { // DestBox
					queue = append(queue, box.Ports[pi].Peer.Box)
				}
			}
		}
	}
}

// BenchmarkAblation_BDDOpCacheSize sweeps the BDD operation-cache size and
// measures atomic-predicate computation, the heaviest BDD workload.
func BenchmarkAblation_BDDOpCacheSize(b *testing.B) {
	ds := netgen.Internet2Like(netgen.Config{Seed: 1, RuleScale: 0.02})
	for _, bits := range []int{10, 14, 16, 18} {
		b.Run("cache-2^"+strconv.Itoa(bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := bdd.NewWithCache(ds.Layout.Bits(), 1<<uint(bits))
				var refs []bdd.Ref
				for bi := range ds.Boxes {
					for _, p := range predicate.PortPredicates(d, ds.Layout, "dstIP", &ds.Boxes[bi].Fwd, ds.Boxes[bi].NumPorts) {
						if p != bdd.False {
							refs = append(refs, p)
						}
					}
				}
				ids := make([]int, len(refs))
				for j := range ids {
					ids[j] = j
				}
				predicate.ComputeMapped(d, refs, ids, len(refs))
			}
		})
	}
}

// BenchmarkAblation_AtomSetOps compares the sorted-slice set intersection
// used during OAPT construction against a bitset alternative.
func BenchmarkAblation_AtomSetOps(b *testing.B) {
	e := getEnv(b)
	in := e.SF.TreeInput()
	rsets := make([][]int32, 0, len(in.Live))
	for _, id := range in.Live {
		rsets = append(rsets, in.Atoms.R(int(id)))
	}
	n := in.Atoms.N()
	b.Run("sorted-slices", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := rsets[i%len(rsets)]
			c := rsets[(i*7+1)%len(rsets)]
			k, x, y := 0, 0, 0
			for x < len(a) && y < len(c) {
				switch {
				case a[x] < c[y]:
					x++
				case a[x] > c[y]:
					y++
				default:
					k++
					x++
					y++
				}
			}
			_ = k
		}
	})
	b.Run("bitsets", func(b *testing.B) {
		bs := make([]predicate.Bitset, len(rsets))
		for i, r := range rsets {
			bs[i] = predicate.NewBitset(n)
			for _, a := range r {
				bs[i].Set(int(a), true)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := bs[i%len(bs)]
			c := bs[(i*7+1)%len(bs)]
			k := 0
			for w := range a {
				k += popcount(a[w] & c[w])
			}
			_ = k
		}
	})
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
