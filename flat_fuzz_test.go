package apclassifier

import (
	"math/rand"
	"sync"
	"testing"

	"apclassifier/internal/netgen"
)

// fuzzClassifiers lazily builds one classifier per netgen dataset for the
// differential fuzz harness. Ordering is fixed (fuzz inputs address a
// dataset by index) and construction happens once per process — fuzz
// workers are separate processes, so each pays the build exactly once.
var fuzzClassifiers struct {
	once sync.Once
	cs   []*Classifier
	ds   []*netgen.Dataset
	err  error
}

func fuzzSetup() ([]*Classifier, []*netgen.Dataset, error) {
	fuzzClassifiers.once.Do(func() {
		names := []string{"internet2", "stanford", "multitenant"}
		all := diffDatasets()
		for _, name := range names {
			ds := all[name]
			c, err := New(ds, Options{})
			if err != nil {
				fuzzClassifiers.err = err
				return
			}
			fuzzClassifiers.cs = append(fuzzClassifiers.cs, c)
			fuzzClassifiers.ds = append(fuzzClassifiers.ds, ds)
		}
	})
	return fuzzClassifiers.cs, fuzzClassifiers.ds, fuzzClassifiers.err
}

// TestAPCFlatEnvHatch checks the operator escape hatch: with APC_FLAT=0
// a new classifier publishes pointer-only snapshots and still answers.
func TestAPCFlatEnvHatch(t *testing.T) {
	t.Setenv("APC_FLAT", "0")
	ds := netgen.MultiTenantLike(2, 2, 5)
	c, err := New(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Manager.Snapshot().Flat() != nil {
		t.Fatal("APC_FLAT=0 classifier still compiled a flat core")
	}
	rng := rand.New(rand.NewSource(48))
	pkt := ds.PacketFromFields(ds.RandomFields(rng))
	if b := c.Behavior(0, pkt); b == nil {
		t.Fatal("pointer-only classifier failed to answer")
	}
}

// FuzzFlatVsPointer is the differential fuzz harness for the flat
// classify core: arbitrary header bytes (padded or truncated to the
// dataset's layout) plus a fuzzed dataset/ingress choice must classify to
// the identical leaf atom through the compiled flat form and the pointer
// tree, and yield the identical network-wide behavior. The corpus seeds
// with the boundary-header generator, so the fuzzer starts on
// classification edges — prefix first/last addresses, off-by-one
// neighbors, port and proto extremes — and mutates outward from there.
func FuzzFlatVsPointer(f *testing.F) {
	cs, dss, err := fuzzSetup()
	if err != nil {
		f.Fatal(err)
	}
	rng := rand.New(rand.NewSource(47))
	for di, ds := range dss {
		for _, fl := range boundaryFields(ds, rng, 2) {
			f.Add(uint8(di), uint8(rng.Intn(len(ds.Boxes))), []byte(ds.PacketFromFields(fl)))
		}
	}

	f.Fuzz(func(t *testing.T, dsChoice, ingress uint8, hdr []byte) {
		c := cs[int(dsChoice)%len(cs)]
		ds := dss[int(dsChoice)%len(cs)]
		pkt := c.Layout.NewPacket()
		copy(pkt, hdr) // shorter fuzz input reads as zero-padded header
		in := int(ingress) % len(ds.Boxes)

		s := c.Manager.Snapshot()
		flat := s.Flat()
		if flat == nil {
			t.Fatal("published snapshot carries no flat core")
		}
		want, _ := s.ClassifyPointer(pkt)
		got := flat.Classify(pkt)
		if got != want {
			t.Errorf("dataset %d pkt %x: flat atom %d != pointer atom %d",
				int(dsChoice)%len(cs), pkt, got.AtomID, want.AtomID)
		}
		// Behavior must agree too — checked through the facade's pinned
		// stage-2 path, so a leaf divergence surfaces as the full
		// network-wide consequence, not just an atom ID.
		fs := &Snapshot{c: c, s: s}
		bf := fs.BehaviorFrom(in, pkt, got).String()
		bp := fs.BehaviorFrom(in, pkt, want).String()
		if bf != bp {
			t.Errorf("dataset %d pkt %x ingress %d: behaviors diverge:\n flat    %s\n pointer %s",
				int(dsChoice)%len(cs), pkt, in, bf, bp)
		}
	})
}
